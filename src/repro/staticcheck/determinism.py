"""Pass 2: the Python-AST determinism / checkpoint-safety linter.

The checkpoint engine (:mod:`repro.core.checkpoint`) enforces one rule at
runtime -- the scheduler heap may hold bound methods and callable-class
instances, never closures or functions with world-smuggling defaults --
but only at :meth:`Checkpoint.capture` time, after a potentially long
warm-up.  This pass finds the same hazards in the source, before anything
runs, plus nondeterminism the runtime audit cannot see at all:

========  ========================================================
SC101     a closure or lambda is scheduled as a callback
SC102     world state smuggled through a callback default argument
SC103     wall-clock time (``time.time`` etc.) in simulation code
SC104     module-level ``random.*`` outside a seeded stream
SC105     iteration over an unordered set feeds trace records
SC106     ``id()`` used in a hash or fingerprint
========  ========================================================

Three entry points:

- :func:`check_source` / :func:`check_file` lint Python source and are
  what ``repro check`` runs over ``src/repro/experiments``, ``gmp`` and
  ``tcp``;
- :func:`precheck_body` lints just the functions reachable from one
  campaign body, for :class:`~repro.core.orchestrator.Campaign` /
  ``run_fuzz`` / ``repro explore`` pre-flight;
- :func:`audit_pending` is the static half of the capture-time audit:
  it inspects the *live* scheduler heap but reports findings as
  :class:`Diagnostic` objects pinned to the offending function's source,
  which is far more actionable than the runtime audit's repr dump.
"""

from __future__ import annotations

import ast
import builtins
import functools
import inspect
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.tclish.lint.diagnostics import Diagnostic, LintReport, make

#: schedule-like APIs -> positional index of the callback argument.
#: ``Scheduler.schedule(delay, cb)``, ``schedule_at(time, cb)``,
#: ``TimerSet.register(kind, key, delay, cb)``, ``Timer(scheduler, cb)``.
_SCHEDULE_APIS: Dict[str, int] = {
    "schedule": 1,
    "schedule_at": 1,
    "register": 3,
    "Timer": 1,
}

#: default-argument types a scheduled plain function may carry (mirrors
#: ``repro.core.checkpoint._ATOMIC_DEFAULTS``)
_ATOMIC_DEFAULTS = (int, float, str, bytes, bool, frozenset, type(None))

#: wall-clock calls per module: module name -> forbidden attributes
_WALL_CLOCK = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "localtime", "gmtime"},
    "datetime": {"now", "utcnow", "today"},
}

#: ``random`` module attributes that are fine to touch statically --
#: constructing a seeded instance is the sanctioned escape hatch
_RANDOM_OK = {"Random", "SystemRandom", "seed", "getstate", "setstate"}

#: function-name fragments that mark an identity/fingerprint context
#: for SC106
_FINGERPRINT_NAMES = ("fingerprint", "identity", "digest", "__hash__")

_BUILTIN_NAMES = frozenset(dir(builtins))


def _is_atomic_default(node: ast.expr) -> bool:
    """Would this default-argument expression survive a world deepcopy?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, _ATOMIC_DEFAULTS)
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand,
                                                    ast.Constant):
        return isinstance(node.operand.value, _ATOMIC_DEFAULTS)
    return False


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names bound inside ``fn`` (params, assignments, for/with targets)."""
    bound: Set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        a = fn.args
        for arg in (a.posonlyargs + a.args + a.kwonlyargs):
            bound.add(arg.arg)
        if a.vararg:
            bound.add(a.vararg.arg)
        if a.kwarg:
            bound.add(a.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
        elif isinstance(node, ast.comprehension):
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    bound.add(name.id)
    return bound


def _free_names(fn: ast.AST, module_names: Set[str]) -> Set[str]:
    """Names ``fn`` loads that resolve neither locally nor at module level.

    A nested function with free names is a closure: deepcopy treats
    functions as atomic, so its cells would keep pointing into the
    original world after a fork.
    """
    bound = _local_bindings(fn)
    free: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name = node.id
            if (name not in bound and name not in module_names
                    and name not in _BUILTIN_NAMES):
                free.add(name)
    return free


class _Scope:
    """One function scope during the walk."""

    def __init__(self, node: Optional[ast.AST], toplevel: str):
        self.node = node
        #: name of the enclosing top-level function ("" at module level)
        self.toplevel = toplevel
        #: nested function definitions by name
        self.local_funcs: Dict[str, ast.AST] = {}
        #: names known to be bound to sets in this scope
        self.set_names: Set[str] = set()


class _DeterminismVisitor(ast.NodeVisitor):
    """Single-pass walker producing SC1xx diagnostics.

    Each diagnostic is tagged with the name of the enclosing top-level
    function so :func:`precheck_body` can filter to one body's reachable
    call graph.
    """

    def __init__(self, tree: ast.Module):
        self.findings: List[Tuple[str, Diagnostic]] = []
        self.module_names: Set[str] = set()
        #: alias -> module ("time", "datetime", "random")
        self.module_aliases: Dict[str, str] = {}
        #: bare name -> "module.attr" (from-imports of forbidden calls)
        self.from_imports: Dict[str, str] = {}
        #: top-level function name -> names of same-module functions
        #: it calls (for precheck reachability)
        self.calls: Dict[str, Set[str]] = {}
        #: module-level function defs (for SC102 on module callbacks)
        self.module_funcs: Dict[str, ast.AST] = {}
        #: attribute names assigned a set in any ``self.X = set()``
        self.set_attrs: Set[str] = set()
        self._scopes: List[_Scope] = [_Scope(None, "")]
        self._prescan(tree)

    # -- pre-scan: module-level names, imports, set-typed attributes ----

    def _prescan(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_names.add(node.name)
                self.module_funcs[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.module_names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            self.module_names.add(name.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                self.module_names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    asname = alias.asname or alias.name.split(".")[0]
                    self.module_names.add(asname)
                    if alias.name in ("time", "datetime", "random"):
                        self.module_aliases[asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    asname = alias.asname or alias.name
                    self.module_names.add(asname)
                    module = node.module or ""
                    if (module in _WALL_CLOCK
                            and alias.name in _WALL_CLOCK[module]):
                        self.from_imports[asname] = f"{module}.{alias.name}"
                    elif module == "random" and alias.name not in _RANDOM_OK:
                        self.from_imports[asname] = f"random.{alias.name}"
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and _is_set_expr(node.value)):
                self.set_attrs.add(node.targets[0].attr)
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Attribute)
                  and _annotation_is_set(node.annotation)):
                self.set_attrs.add(node.target.attr)

    # -- scope plumbing -------------------------------------------------

    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _report(self, code: str, node: ast.AST, message: str,
                hint: str = "") -> None:
        diag = make(code, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0) + 1, message, hint)
        self.findings.append((self._scope.toplevel, diag))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node: ast.AST) -> None:
        parent = self._scope
        if parent.node is not None:
            parent.local_funcs[node.name] = node
        toplevel = parent.toplevel or node.name
        scope = _Scope(node, toplevel)
        self._scopes.append(scope)
        self.calls.setdefault(toplevel, set())
        if _name_suggests_fingerprint(node.name):
            self._flag_id_calls_in(node)
        self.generic_visit(node)
        self._scopes.pop()

    # -- assignments: track set-typed locals ---------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)
                and self._scope.node is not None):
            if _is_set_expr(node.value):
                self._scope.set_names.add(node.targets[0].id)
            else:
                self._scope.set_names.discard(node.targets[0].id)
        self.generic_visit(node)

    # -- the checks -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._record_callgraph_edge(node)
        self._check_schedule(node)
        self._check_wall_clock(node)
        self._check_random(node)
        self._check_id_in_hash(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node)
        self.generic_visit(node)

    def _record_callgraph_edge(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and self._scope.toplevel
                and node.func.id in self.module_names):
            self.calls[self._scope.toplevel].add(node.func.id)

    def _callback_args(self, node: ast.Call) -> List[ast.expr]:
        """The callback expressions of a schedule-like call, if any."""
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        else:
            return []
        index = _SCHEDULE_APIS.get(name)
        if index is None:
            return []
        out = []
        if len(node.args) > index:
            out.append(node.args[index])
        for keyword in node.keywords:
            if keyword.arg == "callback":
                out.append(keyword.value)
        return out

    def _check_schedule(self, node: ast.Call) -> None:
        for arg in self._callback_args(node):
            if isinstance(arg, ast.Lambda):
                self._report(
                    "SC101", arg,
                    "lambda scheduled as a callback; it would not "
                    "survive a checkpoint fork",
                    hint="schedule a bound method or a callable class")
                continue
            if not isinstance(arg, ast.Name):
                continue  # attributes are bound methods / instances
            target = None
            for scope in reversed(self._scopes):
                if arg.id in scope.local_funcs:
                    target = scope.local_funcs[arg.id]
                    break
            if target is not None:
                free = _free_names(target, self.module_names)
                if free:
                    self._report(
                        "SC101", arg,
                        f"closure {arg.id!r} scheduled as a callback "
                        f"(captures {', '.join(sorted(free))}); it would "
                        f"keep referencing the original world after a "
                        f"checkpoint fork",
                        hint="use a bound method or a callable class")
                    continue
            else:
                target = self.module_funcs.get(arg.id)
            if target is not None:
                self._check_defaults(arg, target)

    def _check_defaults(self, site: ast.AST, fn: ast.AST) -> None:
        defaults = list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None]
        for default in defaults:
            if not _is_atomic_default(default):
                self._report(
                    "SC102", site,
                    f"scheduled function {fn.name!r} smuggles world "
                    f"state through a default argument "
                    f"(line {default.lineno})",
                    hint="pass the value via scheduler args instead")
                return

    def _check_wall_clock(self, node: ast.Call) -> None:
        qualified = self._qualified_call(node)
        if qualified is None:
            return
        module, attr = qualified
        if module in _WALL_CLOCK and attr in _WALL_CLOCK[module]:
            self._report(
                "SC103", node,
                f"wall-clock call {module}.{attr}() in simulation code",
                hint="use the scheduler's virtual clock "
                     "(env.scheduler.now)")

    def _check_random(self, node: ast.Call) -> None:
        qualified = self._qualified_call(node)
        if qualified is None:
            return
        module, attr = qualified
        if module == "random" and attr not in _RANDOM_OK:
            self._report(
                "SC104", node,
                f"module-level random.{attr}() draws from the shared "
                f"unseeded RNG",
                hint="draw from a seeded stream (env.dist(...) / "
                     "DistributionSet)")

    def _qualified_call(self, node: ast.Call) -> Optional[Tuple[str, str]]:
        """Resolve a call target to ``(module, attr)`` via the imports."""
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                module = self.module_aliases.get(value.id)
                if module is not None:
                    return module, func.attr
            # datetime.datetime.now()
            if (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and self.module_aliases.get(value.value.id)
                    == "datetime"):
                return "datetime", func.attr
        elif isinstance(func, ast.Name):
            dotted = self.from_imports.get(func.id)
            if dotted is not None:
                module, attr = dotted.split(".", 1)
                return module, attr
        return None

    def _check_set_iteration(self, node: ast.For) -> None:
        if not _feeds_trace(node.body):
            return
        reason = self._set_iterable_reason(node.iter)
        if reason is not None:
            self._report(
                "SC105", node.iter,
                f"iteration over {reason} feeds trace records; set "
                f"order is arbitrary across processes",
                hint="iterate sorted(...) to keep traces byte-identical")

    def _set_iterable_reason(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return f"{node.func.id}(...)"
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return (self._set_iterable_reason(node.left)
                    or self._set_iterable_reason(node.right))
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope.set_names:
                    return f"the set {node.id!r}"
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.set_attrs):
            return f"the set field self.{node.attr}"
        return None

    def _check_id_in_hash(self, node: ast.Call) -> None:
        consumer = None
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            consumer = "hash()"
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "update"):
            consumer = "a digest update"
        if consumer is None:
            return
        for arg in ast.walk(node):
            if (isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name)
                    and arg.func.id == "id" and arg is not node):
                self._report(
                    "SC106", arg,
                    f"id() feeds {consumer}; object addresses differ "
                    f"across runs and forks",
                    hint="hash stable identifiers (names, seeds, "
                         "positions) instead")

    def _flag_id_calls_in(self, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"):
                self._report(
                    "SC106", node,
                    f"id() inside {fn.name!r}; object addresses are not "
                    f"a stable identity",
                    hint="derive identities from names, seeds or trace "
                         "positions")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet",
                           "MutableSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "MutableSet")
    return False


def _feeds_trace(body: Sequence[ast.stmt]) -> bool:
    """Does this loop body (transitively) emit trace records?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in ("record", "_record")):
                    return True
    return False


def _name_suggests_fingerprint(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in _FINGERPRINT_NAMES)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def check_source(source: str, source_name: str = "<module>"
                 ) -> LintReport:
    """Lint Python source for SC1xx hazards."""
    report = LintReport(source_name=source_name)
    try:
        tree = ast.parse(source, filename=source_name)
    except SyntaxError as err:
        report.add(make("SL000", err.lineno or 1, (err.offset or 0) + 1,
                        f"Python syntax error: {err.msg}"))
        return report
    visitor = _DeterminismVisitor(tree)
    visitor.visit(tree)
    report.extend(diag for _fn, diag in visitor.findings)
    return report


def check_file(path: str) -> LintReport:
    """Lint one Python file for SC1xx hazards."""
    with open(path, encoding="utf-8") as fp:
        return check_source(fp.read(), source_name=path)


#: (path, mtime_ns, size) -> (tagged findings, callgraph)
_PRECHECK_CACHE: Dict[Tuple[str, int, int],
                      Tuple[List[Tuple[str, Diagnostic]],
                            Dict[str, Set[str]]]] = {}


def _module_findings(path: str) -> Tuple[List[Tuple[str, Diagnostic]],
                                         Dict[str, Set[str]]]:
    import os
    stat = os.stat(path)
    key = (path, stat.st_mtime_ns, stat.st_size)
    cached = _PRECHECK_CACHE.get(key)
    if cached is not None:
        return cached
    with open(path, encoding="utf-8") as fp:
        tree = ast.parse(fp.read(), filename=path)
    visitor = _DeterminismVisitor(tree)
    visitor.visit(tree)
    _PRECHECK_CACHE.clear()  # one module at a time is plenty
    _PRECHECK_CACHE[key] = (visitor.findings, visitor.calls)
    return _PRECHECK_CACHE[key]


def precheck_body(fn: Callable[..., Any]) -> LintReport:
    """Statically vet one campaign/fuzz body before any worker runs.

    Analyzes the module defining ``fn`` but reports only findings inside
    the functions reachable from ``fn`` through same-module calls, so a
    driver using ``perf_counter`` next door does not block the body it
    drives.  Best-effort: bodies without retrievable source (lambdas,
    REPL definitions, callable instances) produce an empty report.
    """
    target = fn
    if isinstance(target, functools.partial):
        target = target.func
    name = getattr(target, "__name__", "")
    report = LintReport(source_name=f"body:{name or target!r}")
    try:
        path = inspect.getsourcefile(target)
    except TypeError:
        return report
    if path is None or "." in getattr(target, "__qualname__", "."):
        return report  # nested/bound bodies: runtime audit still applies
    try:
        findings, calls = _module_findings(path)
    except (OSError, SyntaxError):
        return report
    reachable = {name}
    frontier = [name]
    while frontier:
        current = frontier.pop()
        for callee in calls.get(current, ()):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    report.source_name = f"{path} (body {name})"
    report.extend(diag for fn_name, diag in findings
                  if fn_name in reachable)
    return report


def audit_pending(scheduler: Any, *,
                  atomic: Tuple[type, ...] = _ATOMIC_DEFAULTS
                  ) -> List[Tuple[str, Diagnostic]]:
    """Statically vet the live scheduler heap's pending callbacks.

    The static counterpart of
    :func:`repro.core.checkpoint.audit_scheduler`, run by
    :meth:`Checkpoint.capture` *first*: instead of a repr of the heap
    entry it pins each finding to the offending function's definition
    (``file:line``), which is where the fix goes.  Returns ``(path,
    diagnostic)`` pairs; an empty list means this audit has nothing to
    say (the runtime audit still runs after it).
    """
    findings: List[Tuple[str, Diagnostic]] = []
    for event in scheduler.pending_events():
        fn = event.callback
        while isinstance(fn, functools.partial):
            fn = fn.func
        if not inspect.isfunction(fn):
            continue  # bound methods / callable instances: memo-safe
        path, line = _definition_site(fn)
        where = f"event@t={event.time:.6f}"
        if fn.__name__ == "<lambda>":
            findings.append((path, make(
                "SC101", line, 1,
                f"{where}: lambda {fn.__qualname__} on the scheduler "
                f"heap; it cannot survive a checkpoint fork",
                hint="schedule a bound method or a callable class")))
            continue
        if fn.__closure__:
            cells = ", ".join(fn.__code__.co_freevars) or "?"
            findings.append((path, make(
                "SC101", line, 1,
                f"{where}: closure {fn.__qualname__} (captures {cells}) "
                f"would keep referencing the original world after a "
                f"fork",
                hint="use a bound method or a callable class")))
            continue
        for default in (fn.__defaults__ or ()):
            if not isinstance(default, atomic):
                findings.append((path, make(
                    "SC102", line, 1,
                    f"{where}: function {fn.__qualname__} smuggles a "
                    f"{type(default).__name__} through a default "
                    f"argument",
                    hint="pass it via scheduler args instead")))
                break
    return findings


def _definition_site(fn: Any) -> Tuple[str, int]:
    try:
        path = inspect.getsourcefile(fn) or "<unknown>"
    except TypeError:
        path = "<unknown>"
    line = getattr(getattr(fn, "__code__", None), "co_firstlineno", 1)
    return path, line
