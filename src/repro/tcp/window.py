"""Zero-window (persist) probing.

"Probing of zero (offered) windows MUST be supported ... If zero window
probing is not supported, a connection may hang forever when an ACK
segment that re-opens the window is lost."

The prober starts when the peer advertises a zero window while data is
waiting, sends one-byte probes with exponentially increasing intervals
capped at ``persist_max`` (60 s BSD, 56 s Solaris), and -- matching the
paper's observation, "while not a specification violation, it seems that
transmitting zero window probes forever even when they are not ACKed could
pose a problem" -- never gives up.  Only a window opening (or connection
teardown) stops it, which is why the paper's machines were still probing
two days after the ethernet was unplugged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer
from repro.netsim.trace import TraceRecorder
from repro.tcp.vendors import VendorProfile
from repro.netsim import kinds as K


class PersistProber:
    """Zero-window probe driver for one connection."""

    def __init__(self, scheduler: Scheduler, profile: VendorProfile, *,
                 send_probe: Callable[[], None],
                 trace: Optional[TraceRecorder] = None,
                 name: str = ""):
        self._scheduler = scheduler
        self._p = profile
        self._send_probe = send_probe
        self._trace = trace
        self._name = name
        self._timer = Timer(scheduler, self._fire, name=f"persist/{name}")
        self.active = False
        self.probes_sent = 0
        self._interval = profile.persist_initial

    def start(self) -> None:
        """Enter the persist state (idempotent)."""
        if self.active:
            return
        self.active = True
        self._interval = self._p.persist_initial
        self._record(K.TCP_PERSIST_START)
        self._timer.start(self._interval)

    def stop(self) -> None:
        """Leave the persist state (window opened or connection closed)."""
        if not self.active:
            return
        self.active = False
        self._timer.stop()
        self._record(K.TCP_PERSIST_STOP)

    def _fire(self) -> None:
        if not self.active:
            return
        self.probes_sent += 1
        self._record(K.TCP_ZWP_PROBE, number=self.probes_sent,
                     interval=self._interval)
        self._send_probe()
        self._interval = min(self._interval * 2, self._p.persist_max)
        self._timer.start(self._interval)

    def _record(self, kind: str, **attrs) -> None:
        if self._trace is not None:
            self._trace.record(kind, t=self._scheduler.now, conn=self._name,
                               **attrs)
