"""The campaign flight recorder: a crash-safe, append-only run journal.

The paper's methodology is campaign-shaped -- every table is a sweep of
fault scenarios whose value lies in the aggregate record -- yet an
in-memory scorecard evaporates the moment a sweep crashes or is killed.
This module makes the record durable: every long-running engine
(``Campaign.run``, ``run_fuzz``, ``repro explore``, ddmin shrinking)
can attach a :class:`Journal` and emit one schema-versioned JSONL event
per lifecycle step -- ``campaign.start``, ``campaign.preflight``,
``campaign.checkpoint_capture``, ``campaign.run_start`` /
``campaign.run_end`` (carrying telemetry, oracle violation codes and
coverage-key deltas), ``campaign.worker_error``,
``campaign.shrink_step``, ``campaign.phase_start`` /
``campaign.phase_end`` spans, ``campaign.end``.

Crash-safety contract:

- **atomic single-line appends**: each event is one ``os.write`` of one
  complete ``\\n``-terminated line to an ``O_APPEND`` descriptor, so a
  killed process can tear at most the final line, never interleave or
  corrupt earlier ones;
- **tolerant replay**: :func:`replay_journal` recovers every complete
  event and reports the torn tail (the undecodable trailing bytes)
  instead of failing, so a journal from a SIGKILLed sweep still
  reproduces the exact partial scorecard via
  :mod:`repro.obs.campaign_report`.

Event kinds are part of the trace-schema registry
(:mod:`repro.netsim.kinds`), so the SC201-SC204 drift pass covers the
journal schema the same way it covers simulator traces; the journal
additionally carries :data:`SCHEMA_VERSION` in every ``campaign.start``
payload, drift-guarded by a pinned-fingerprint test.

Like the rest of :mod:`repro.obs`, journaling is off by default and the
``journal=`` hooks are single ``is not None`` guards; the enabled cost
is CI-gated at <=3% by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, sleep
from typing import (Any, Dict, Iterator, List, Optional, Tuple, Union)

from repro.analysis.export import _jsonable
from repro.netsim import kinds as K

#: version of the journal event schema; bump on any change to the event
#: kind set or to the meaning of a recorded payload field (the pinned
#: drift test in tests/staticcheck holds the two in lockstep)
SCHEMA_VERSION = 1

#: every event kind a journal may contain -- the closed journal schema
JOURNAL_KINDS = frozenset({
    K.CAMPAIGN_START,
    K.CAMPAIGN_PREFLIGHT,
    K.CAMPAIGN_CHECKPOINT_CAPTURE,
    K.CAMPAIGN_PHASE_START,
    K.CAMPAIGN_PHASE_END,
    K.CAMPAIGN_RUN_START,
    K.CAMPAIGN_RUN_END,
    K.CAMPAIGN_WORKER_ERROR,
    K.CAMPAIGN_SHRINK_STEP,
    K.CAMPAIGN_END,
})


@dataclass(frozen=True)
class JournalEvent:
    """One replayed journal event."""

    kind: str
    seq: int
    #: wall-clock seconds since the journal was opened
    t: float
    data: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Journal:
    """Append-only crash-safe JSONL event journal.

    One :class:`Journal` records one sweep (or several back-to-back
    sweeps appended to the same file -- replay segments on
    ``campaign.start``).  Appends go through a single ``os.write`` per
    event on an ``O_APPEND`` descriptor: no user-space buffering, no
    partial flushes, so the only damage a crash can do is truncate the
    final line -- which replay tolerates.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        self._seq = 0
        self._t0 = perf_counter()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def ensure(cls, journal: Union[None, str, Path, "Journal"]
               ) -> "Tuple[Optional[Journal], bool]":
        """Normalize a ``journal=`` argument to ``(journal, owned)``.

        Engines accept ``None`` (journaling off), a path (the engine
        opens and closes the journal), or an existing :class:`Journal`
        (the caller keeps ownership -- several engines can share one
        file, e.g. a fuzz sweep followed by shrinking).
        """
        if journal is None:
            return None, False
        if isinstance(journal, Journal):
            return journal, False
        return cls(journal), True

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Append one event; returns the written dict.

        ``kind`` must belong to :data:`JOURNAL_KINDS` -- the journal
        schema is closed so replayers never meet a kind they cannot
        interpret.  Payload values are JSON-sanitized the same way
        trace exports are.
        """
        if kind not in JOURNAL_KINDS:
            raise ValueError(
                f"unknown journal event kind {kind!r}; the schema "
                f"(version {SCHEMA_VERSION}) allows {sorted(JOURNAL_KINDS)}")
        if self._fd is None:
            raise RuntimeError(f"journal {self.path} is closed")
        event = {"kind": kind, "seq": self._seq,
                 "t": round(perf_counter() - self._t0, 6),
                 "data": {k: _jsonable(v) for k, v in payload.items()}}
        line = json.dumps(event, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        self._seq += 1
        return event

    def start(self, engine: str, **payload: Any) -> Dict[str, Any]:
        """Record ``campaign.start`` with the schema version stamped in."""
        return self.record(K.CAMPAIGN_START, engine=engine,
                           schema=SCHEMA_VERSION, **payload)

    @contextmanager
    def phase(self, name: str, **payload: Any) -> Iterator[None]:
        """A ``campaign.phase_start`` .. ``campaign.phase_end`` span.

        Phases (lint preflight, checkpoint capture, dispatch, merge)
        become duration spans in the Chrome-trace export of the journal
        (:func:`repro.obs.chrometrace.journal_chrome_trace`).
        """
        self.record(K.CAMPAIGN_PHASE_START, name=name, **payload)
        try:
            yield
        finally:
            self.record(K.CAMPAIGN_PHASE_END, name=name)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------

@dataclass
class JournalReplay:
    """Everything recovered from one journal file."""

    path: Path
    events: List[JournalEvent] = field(default_factory=list)
    #: the undecodable trailing bytes of a torn final line (crash mid-
    #: append), None when the journal ends cleanly
    torn_tail: Optional[bytes] = None
    #: bytes consumed by complete events (restart offset for followers)
    clean_bytes: int = 0

    def of(self, kind: str) -> List[JournalEvent]:
        """Every event of one kind, in append order."""
        return [event for event in self.events if event.kind == kind]

    def last(self, kind: str) -> Optional[JournalEvent]:
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    @property
    def complete(self) -> bool:
        """True when the journal records a finished sweep."""
        return self.last(K.CAMPAIGN_END) is not None


def _decode_line(line: bytes) -> Optional[JournalEvent]:
    """One journal line as an event, or None when undecodable."""
    try:
        raw = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(raw, dict):
        return None
    kind = raw.get("kind")
    seq = raw.get("seq")
    t = raw.get("t")
    if not isinstance(kind, str) or kind not in JOURNAL_KINDS:
        return None
    if not isinstance(seq, int) or not isinstance(t, (int, float)):
        return None
    data = raw.get("data")
    return JournalEvent(kind=kind, seq=seq, t=float(t),
                        data=data if isinstance(data, dict) else {})


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Recover every complete event from a journal file.

    Tolerates the torn final line a killed writer leaves behind: a
    trailing chunk that is missing its newline or fails to decode is
    reported as ``torn_tail``, and everything before it is returned.
    An undecodable line anywhere earlier also ends the replay there --
    after a crash only the tail can be damaged, so anything beyond a
    damaged line is unreachable bookkeeping, not data.
    """
    path = Path(path)
    blob = path.read_bytes()
    replay = JournalReplay(path=path)
    offset = 0
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline < 0:
            replay.torn_tail = blob[offset:]
            break
        line = blob[offset:newline]
        event = _decode_line(line)
        if event is None:
            replay.torn_tail = blob[offset:]
            break
        replay.events.append(event)
        offset = newline + 1
        replay.clean_bytes = offset
    return replay


def follow_journal(path: Union[str, Path], *, poll: float = 0.2,
                   timeout: Optional[float] = None
                   ) -> Iterator[JournalEvent]:
    """Yield journal events as they are appended (``repro tail``).

    Starts from the beginning of the file and keeps polling for new
    complete lines until a ``campaign.end`` event arrives (the sweep
    finished), ``timeout`` wall seconds elapse, or the consumer stops
    iterating.  A torn tail is never yielded -- if the writer crashed
    mid-append the follower simply stops seeing new events and the
    timeout ends the follow.
    """
    path = Path(path)
    offset = 0
    buffer = b""
    started = perf_counter()
    while True:
        try:
            with open(path, "rb") as fp:
                fp.seek(offset)
                chunk = fp.read()
        except FileNotFoundError:
            chunk = b""
        if chunk:
            offset += len(chunk)
            buffer += chunk
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line, buffer = buffer[:newline], buffer[newline + 1:]
                event = _decode_line(line)
                if event is None:
                    return
                yield event
                if event.kind == K.CAMPAIGN_END:
                    return
        if timeout is not None and perf_counter() - started >= timeout:
            return
        sleep(poll)
