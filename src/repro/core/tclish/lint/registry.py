"""The command registry the analyzer checks scripts against.

A :class:`CommandSignature` describes one callable command: its name,
argument-count bounds, a usage line, and a one-line doc.  Signatures come
from three places:

- the tclish stdlib (:func:`builtin_registry`, declared here);
- the PFI bridge (``repro.core.script.PFI_COMMANDS`` -- the single source
  of truth the ``@cmd`` decorator fills in; see :func:`default_registry`);
- ``proc`` definitions found in the script under analysis (added by the
  analyzer's pre-pass).

``script.py`` imports :class:`CommandSignature` from here, so this module
must not import ``repro.core.script`` at module level (the PFI table is
pulled in lazily inside :func:`default_registry`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class CommandSignature:
    """Name, arity bounds and documentation for one command."""

    name: str
    min_args: int = 0
    max_args: Optional[int] = None   # None = unbounded
    usage: str = ""
    doc: str = ""

    def accepts(self, count: int) -> bool:
        """True when a call with ``count`` arguments is well-formed."""
        if count < self.min_args:
            return False
        return self.max_args is None or count <= self.max_args

    def arity_text(self) -> str:
        """Human form of the accepted argument range."""
        if self.max_args is None:
            return f"at least {self.min_args}"
        if self.min_args == self.max_args:
            return str(self.min_args)
        return f"{self.min_args} to {self.max_args}"


class CommandRegistry:
    """A mutable name -> signature mapping for one analysis run."""

    def __init__(self, signatures: Iterable[CommandSignature] = ()):
        self._by_name: Dict[str, CommandSignature] = {}
        for signature in signatures:
            self.add(signature)

    def add(self, signature: CommandSignature) -> None:
        self._by_name[signature.name] = signature

    def get(self, name: str) -> Optional[CommandSignature]:
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self):
        return sorted(self._by_name)

    def copy(self) -> "CommandRegistry":
        fresh = CommandRegistry()
        fresh._by_name.update(self._by_name)
        return fresh


def _sig(name: str, min_args: int, max_args: Optional[int],
         usage: str) -> CommandSignature:
    return CommandSignature(name, min_args, max_args, usage)


#: arity of every stdlib command (mirrors ``stdlib_loader.install``)
_BUILTINS = (
    _sig("set", 1, 2, "set varName ?newValue?"),
    _sig("unset", 1, None, "unset varName ?varName ...?"),
    _sig("incr", 1, 2, "incr varName ?increment?"),
    _sig("append", 1, None, "append varName ?value ...?"),
    _sig("expr", 1, None, "expr arg ?arg ...?"),
    _sig("if", 2, None, "if cond body ?elseif cond body ...? ?else body?"),
    _sig("while", 2, 2, "while test body"),
    _sig("for", 4, 4, "for start test next body"),
    _sig("foreach", 3, 3, "foreach varName list body"),
    _sig("proc", 3, 3, "proc name params body"),
    _sig("return", 0, 1, "return ?value?"),
    _sig("break", 0, 0, "break"),
    _sig("continue", 0, 0, "continue"),
    _sig("global", 1, None, "global varName ?varName ...?"),
    _sig("puts", 0, 2, "puts ?-nonewline? string"),
    _sig("eval", 1, None, "eval arg ?arg ...?"),
    _sig("catch", 1, 2, "catch script ?varName?"),
    _sig("list", 0, None, "list ?value ...?"),
    _sig("lindex", 2, 2, "lindex list index"),
    _sig("llength", 1, 1, "llength list"),
    _sig("lappend", 1, None, "lappend varName ?value ...?"),
    _sig("lrange", 3, 3, "lrange list first last"),
    _sig("lsearch", 2, 2, "lsearch list pattern"),
    _sig("lsort", 1, None, "lsort ?options? list"),
    _sig("lreplace", 3, None, "lreplace list first last ?element ...?"),
    _sig("lrepeat", 2, None, "lrepeat count ?element ...?"),
    _sig("switch", 2, None, "switch ?options? value {pattern body ...}"),
    _sig("concat", 0, None, "concat ?arg ...?"),
    _sig("split", 1, 2, "split string ?splitChars?"),
    _sig("join", 1, 2, "join list ?joinString?"),
    _sig("string", 2, None, "string option arg ?arg ...?"),
    _sig("format", 1, None, "format formatString ?arg ...?"),
    _sig("info", 1, 2, "info option ?arg?"),
    _sig("error", 0, 1, "error ?message?"),
)


def builtin_registry() -> CommandRegistry:
    """Signatures for the tclish stdlib only."""
    return CommandRegistry(_BUILTINS)


def default_registry() -> CommandRegistry:
    """Stdlib plus the PFI bridge commands -- what a filter script sees."""
    from repro.core.script import PFI_COMMANDS
    registry = builtin_registry()
    for signature in PFI_COMMANDS.values():
        registry.add(signature)
    return registry
