"""Regenerates paper Figure 4: retransmission timeout value series.

The figure plots, per vendor, the interval before each successive
retransmission of the dropped segment for the no-ACK-delay, 3-second-delay
and 8-second-delay experiments.  We print the same series as aligned
columns (an ASCII rendition of the three panels) and assert the curve
shapes: monotone non-decreasing, exponential rise, and the 64 s plateau
for the BSD stacks.
"""

from repro.analysis.shape import is_exponential_backoff
from repro.experiments.tcp_delayed_ack import run_all as run_delayed
from repro.experiments.tcp_retransmission import run_all as run_nodelay
from repro.tcp import BSD_DERIVED, VENDORS

from conftest import emit


def collect_series():
    return {
        "no delay": {n: r.intervals for n, r in run_nodelay().items()},
        "3 s ACK delay": {n: r.intervals for n, r in run_delayed(3.0).items()},
        "8 s ACK delay": {n: r.intervals for n, r in run_delayed(8.0).items()},
    }


def render_panel(title, series_by_vendor):
    lines = [title, "-" * len(title)]
    width = max(len(v) for v in series_by_vendor.values())
    header = "retx#:".ljust(14) + " ".join(f"{i + 1:>7d}" for i in range(width))
    lines.append(header)
    for vendor, series in series_by_vendor.items():
        cells = " ".join(f"{value:7.2f}" for value in series)
        lines.append(f"{vendor:<13s} {cells}")
    return "\n".join(lines)


def test_figure4_rto_series(once_benchmark):
    panels = once_benchmark(collect_series)
    text = "\n\n".join(render_panel(title, series)
                       for title, series in panels.items())
    emit("Figure 4: Retransmission timeout values "
         "(interval before each retransmission, seconds)", text)

    for title, series_by_vendor in panels.items():
        for vendor, series in series_by_vendor.items():
            profile = VENDORS[vendor]
            assert series, f"{vendor} produced no retransmissions ({title})"
            # Figure 4's curves rise monotonically to their cap (Solaris's
            # first point may sit above the second: the post-timeout reset
            # quirk), so check the tail
            tail = series[1:] if not profile.uses_jacobson else series
            for prev, cur in zip(tail, tail[1:]):
                assert cur >= prev * 0.99, (vendor, title, series)
    # BSD curves plateau at 64 s in the no-delay panel
    for vendor in BSD_DERIVED:
        assert abs(panels["no delay"][vendor][-1] - 64.0) < 1.0
    # delayed panels start higher than the no-delay panel for BSD stacks
    for vendor in BSD_DERIVED:
        assert panels["3 s ACK delay"][vendor][0] > \
            panels["no delay"][vendor][0]
        assert panels["8 s ACK delay"][vendor][0] > \
            panels["3 s ACK delay"][vendor][0]
