"""Tahoe-style congestion control.

The 1994-era BSD stacks the paper probed ran 4.3BSD-Tahoe congestion
control: **slow start** (cwnd grows one MSS per ACK until ssthresh),
**congestion avoidance** (roughly one MSS per round trip above ssthresh),
a **timeout reaction** (ssthresh halves to half the flight size, cwnd
collapses to one MSS), and **fast retransmit** (the third duplicate ACK
retransmits the oldest segment without waiting for the timer, with the
same multiplicative decrease).

The controller is pure bookkeeping: the connection consults
:meth:`send_allowance` before transmitting and reports ACK/timeout/dupack
events.  It is enabled per :class:`~repro.tcp.vendors.VendorProfile`
(``congestion_control=True``) and disabled by default, because the
paper's experiments are flow-control and timer driven.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.trace import TraceRecorder
from repro.tcp.vendors import VendorProfile
from repro.netsim import kinds as K


class TahoeController:
    """Congestion window state machine (Tahoe: no fast recovery)."""

    def __init__(self, profile: VendorProfile, *,
                 trace: Optional[TraceRecorder] = None,
                 clock=None, name: str = ""):
        self._p = profile
        self._trace = trace
        self._clock = clock or (lambda: 0.0)
        self._name = name
        self.cwnd = profile.mss
        self.ssthresh = profile.initial_ssthresh
        self.dup_acks = 0
        self.fast_retransmits = 0
        self.timeout_collapses = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def send_allowance(self, peer_window: int) -> int:
        """Bytes the sender may have in flight right now."""
        return min(peer_window, self.cwnd)

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def on_new_ack(self, bytes_in_flight: int) -> None:
        """An ACK advanced snd_una: grow the window."""
        self.dup_acks = 0
        if self.in_slow_start:
            self.cwnd += self._p.mss
        else:
            # congestion avoidance: ~one MSS per RTT
            self.cwnd += max(1, self._p.mss * self._p.mss // self.cwnd)
        self._record(K.TCP_CWND, cwnd=self.cwnd, ssthresh=self.ssthresh,
                     phase="slow_start" if self.in_slow_start
                     else "avoidance")

    def on_duplicate_ack(self, bytes_in_flight: int) -> bool:
        """A duplicate ACK arrived.  Returns True when the third in a row
        triggers a fast retransmit."""
        self.dup_acks += 1
        if self.dup_acks == self._p.dupack_threshold:
            self._multiplicative_decrease(bytes_in_flight)
            self.fast_retransmits += 1
            self._record(K.TCP_FAST_RETRANSMIT, cwnd=self.cwnd,
                         ssthresh=self.ssthresh)
            return True
        return False

    def on_timeout(self, bytes_in_flight: int) -> None:
        """The retransmission timer expired: collapse to one segment."""
        self._multiplicative_decrease(bytes_in_flight)
        self.timeout_collapses += 1
        self.dup_acks = 0
        self._record(K.TCP_CWND_COLLAPSE, cwnd=self.cwnd,
                     ssthresh=self.ssthresh)

    def _multiplicative_decrease(self, bytes_in_flight: int) -> None:
        self.ssthresh = max(bytes_in_flight // 2, 2 * self._p.mss)
        self.cwnd = self._p.mss

    def _record(self, kind: str, **attrs) -> None:
        if self._trace is not None:
            self._trace.record(kind, t=self._clock(), conn=self._name,
                               **attrs)

    def __repr__(self) -> str:
        phase = "slow-start" if self.in_slow_start else "avoidance"
        return (f"TahoeController(cwnd={self.cwnd}, "
                f"ssthresh={self.ssthresh}, {phase})")
