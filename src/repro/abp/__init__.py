"""The alternating-bit protocol (ABP): a third fault-injection target.

The paper argues its approach applies uniformly to "application-level
protocols, interprocess communication protocols, network protocols, or
device layer protocols".  This package backs that claim with a protocol
the paper did not test: a textbook stop-and-wait ARQ whose correctness
depends on exactly the properties the PFI layer attacks (loss tolerance
via retransmission, duplicate suppression via the alternating bit).

Like the GMP, it ships with a findable bug:
``AbpReceiver(check_bit=False)`` delivers duplicates when a retransmission
arrives -- invisible on a clean network, exposed by a single ACK-drop
filter script (see ``tests/integration/test_abp.py`` and
``examples/abp_bug_demo.py``).
"""

from repro.abp.protocol import (AbpFrame, AbpReceiver, AbpSender,
                                abp_stubs)

__all__ = ["AbpFrame", "AbpReceiver", "AbpSender", "abp_stubs"]
