"""scriptlint: static analysis for tclish fault-injection scripts.

A buggy filter script silently invalidates an entire experiment -- a
misspelled ``xDrop`` never fires, ``chance 1.5`` drops everything, an
``xHold`` that is never released starves the protocol.  The runtime only
notices when (or if) the broken command executes, possibly minutes into a
parallel campaign.  This package reuses the tclish lexer/compiler as a
front end and finds those mistakes in milliseconds, before anything runs.

Entry points:

- :func:`lint_source` -- analyze one script (plus its init script);
- :func:`lint_pair` -- analyze a send/receive pair, adding peer/sync
  key-consistency checks across the two interpreters;
- :func:`lint_file` -- analyze a ``.tcl`` file from disk.

Diagnostics carry a stable code (``SL001`` ...), severity, 1-based
line/column, message and hint; see ``docs/scriptlint.md`` for the table.
Wired into the stack at three layers: :class:`~repro.core.script.
TclishFilter` validates at construction, :class:`~repro.core.
orchestrator.Campaign` refuses configs with broken scripts before any
worker starts, and ``repro lint`` exposes the analyzer from the shell.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.tclish.lint.checks import Analyzer, ScriptSummary
from repro.core.tclish.lint.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintReport,
)
from repro.core.tclish.lint.pair import analyze_pair
from repro.core.tclish.lint.registry import (
    CommandRegistry,
    CommandSignature,
    builtin_registry,
    default_registry,
)
from repro.core.tclish.lint.reporting import (
    TclishLintError,
    render_json,
    render_text,
)

__all__ = [
    "Analyzer",
    "CODES",
    "CommandRegistry",
    "CommandSignature",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintReport",
    "ScriptSummary",
    "TclishLintError",
    "WARNING",
    "builtin_registry",
    "default_registry",
    "lint_file",
    "lint_pair",
    "lint_source",
    "render_json",
    "render_text",
]


def lint_source(source: str, *, init_script: str = "",
                registry: Optional[CommandRegistry] = None,
                predefined: Sequence[str] = (),
                source_name: str = "<script>") -> LintReport:
    """Statically analyze one tclish filter script.

    ``init_script`` is analyzed first with shared dataflow state, exactly
    as :class:`~repro.core.script.TclishFilter` evaluates it once before
    the body ever runs.  ``predefined`` names variables the harness sets
    directly on the interpreter.
    """
    analyzer = Analyzer(registry=registry, predefined=predefined)
    summary = analyzer.analyze(source, init_script)
    report = LintReport(source_name=source_name)
    report.extend(summary.diagnostics)
    return report


def lint_pair(send_source: str, receive_source: str, *,
              send_init: str = "", receive_init: str = "",
              registry: Optional[CommandRegistry] = None,
              predefined: Sequence[str] = (),
              source_name: str = "<pair>") -> LintReport:
    """Analyze a send/receive script pair, including cross-script checks."""
    send_an = Analyzer(registry=registry, predefined=predefined,
                       label="send")
    receive_an = Analyzer(registry=registry, predefined=predefined,
                          label="receive")
    send_summary = send_an.analyze(send_source, send_init)
    receive_summary = receive_an.analyze(receive_source, receive_init)
    report = LintReport(source_name=source_name)
    report.extend(send_summary.diagnostics)
    report.extend(receive_summary.diagnostics)
    report.extend(analyze_pair(send_summary, receive_summary))
    return report


def lint_file(path: str, *,
              registry: Optional[CommandRegistry] = None,
              predefined: Sequence[str] = ()) -> LintReport:
    """Analyze a tclish script file from disk."""
    with open(path) as fp:
        source = fp.read()
    return lint_source(source, registry=registry, predefined=predefined,
                       source_name=path)
