"""Experiment GMP-1 (paper Table 5): packet interruption.

Four sub-experiments on a three-machine group:

- **drop all heartbeats / suspend**: one machine's send filter drops every
  outgoing heartbeat, *including the loopback heartbeat to itself*.  With
  the historical bugs: the daemon declares itself dead to the group but
  stays in the old group marked "down", and PROCLAIMs it should forward
  are lost to the wrong-parameter bug.  Fixed: it falls back to a
  singleton group and rejoins.  Suspending the daemon 30 (virtual)
  seconds shows the identical failure.
- **drop most heartbeats**: only heartbeats to *other* members are
  dropped; the machine is repeatedly kicked out, forms a singleton group,
  rejoins, and is kicked out again -- "behaved as specified".
- **drop ACKs of MEMBERSHIP_CHANGE**: the leader's receive filter drops
  compsun1's ACKs; compsun1 is never committed into any group.
- **drop COMMITs**: compsun1's receive filter drops COMMIT packets; it
  stays IN_TRANSITION, everyone else commits it into their view, and the
  missing heartbeats get it kicked out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import ScriptContext
from repro.experiments.gmp_common import build_gmp_cluster
from repro.gmp import BugFlags, FIXED

WORLD = [1, 2, 3]
FAULTY = 3           # the machine whose packets are interrupted
LEADER = 1
JOINER = 3           # "compsun1" in the ACK/COMMIT drop tests


@dataclass
class SelfDeathResult:
    """Drop-all-heartbeats / suspend sub-experiment."""

    bugs_on: bool
    self_death_bug_fired: bool
    stayed_in_old_group: bool
    forward_param_bug_fired: bool
    formed_singleton: bool
    rejoined: bool


@dataclass
class KickRejoinResult:
    """Drop-most-heartbeats sub-experiment."""

    times_kicked_out: int
    times_rejoined: int
    cycled: bool


@dataclass
class AckDropResult:
    """Drop-ACKs-of-MEMBERSHIP_CHANGE sub-experiment."""

    joiner_ever_committed: bool
    joiner_mc_timeouts: int
    joiner_kept_proclaiming: bool
    others_formed_group_without_joiner: bool


@dataclass
class CommitDropResult:
    """Drop-COMMITs sub-experiment."""

    joiner_entered_transition: bool
    joiner_ever_stable_in_group: bool
    others_committed_joiner: bool
    joiner_kicked_after_commit: bool
    joiner_mc_timeouts: int


# ----------------------------------------------------------------------
# sub-experiment 1: drop all heartbeats (including to self)
# ----------------------------------------------------------------------

def drop_heartbeats_filter(*, to_others_only: bool = False,
                           local_address: Optional[int] = None):
    """Send filter dropping outgoing heartbeats."""
    def send_filter(ctx: ScriptContext) -> None:
        if ctx.msg_type() != "HEARTBEAT":
            return
        if to_others_only and ctx.msg.meta.get("dst") == local_address:
            return  # the loopback heartbeat still flows
        ctx.drop()
    return send_filter


def execute_self_death(*, bugs_on: bool, seed: int = 0,
                       via_suspend: bool = False):
    """Drive the drop-all-heartbeats (or suspend) scenario; returns the
    cluster after the fault, the probe, and (when fixed) the heal."""
    flags = {FAULTY: BugFlags(self_death=True, proclaim_forward_param=True)
             if bugs_on else FIXED}
    cluster = build_gmp_cluster(WORLD, bugs=flags, seed=seed)
    cluster.start()
    cluster.run_until(10.0)
    assert cluster.all_in_one_group(), "group should form before the fault"

    if via_suspend:
        cluster.daemons[FAULTY].suspend()
        cluster.scheduler.schedule(30.0, cluster.daemons[FAULTY].resume)
    else:
        cluster.pfis[FAULTY].set_send_filter(drop_heartbeats_filter())
    fault_time = cluster.scheduler.now
    # wait past the resume point in the suspend variant so the probe hits
    # a running (but possibly self-"dead") daemon
    cluster.run_until(fault_time + (35.0 if via_suspend else 20.0))

    # probe the "dead" machine with a PROCLAIM from a stranger: the PFI
    # layer *injects* the message, the paper's spontaneous-probe operation
    probe = cluster.pfis[FAULTY].stubs.generate(
        "PROCLAIM", sender=99, originator=99)
    cluster.pfis[FAULTY].inject(probe, "receive")
    cluster.run_until(fault_time + 55.0)

    if not bugs_on:
        # heal the fault and let the fixed daemon rejoin cleanly
        if via_suspend:
            pass  # resume already scheduled
        else:
            cluster.pfis[FAULTY].clear_filters()
        cluster.run_until(cluster.scheduler.now + 30.0)
    return cluster


def run_self_death(*, bugs_on: bool, seed: int = 0,
                   via_suspend: bool = False) -> SelfDeathResult:
    """Drop all heartbeats on one machine (or suspend it)."""
    cluster = execute_self_death(bugs_on=bugs_on, seed=seed,
                                 via_suspend=via_suspend)
    trace = cluster.trace
    node = FAULTY
    self_death = trace.count("gmp.self_death_bug", node=node) > 0
    singleton = trace.count("gmp.singleton", node=node) > 0 or \
        trace.count("gmp.self_restart", node=node) > 0
    forward_bug = trace.count("gmp.forward_param_bug", node=node) > 0
    daemon = cluster.daemons[FAULTY]
    stayed = (not singleton) and len(daemon.view.members) > 1
    rejoined = (not bugs_on) and cluster.all_in_one_group()
    return SelfDeathResult(
        bugs_on=bugs_on,
        self_death_bug_fired=self_death,
        stayed_in_old_group=stayed,
        forward_param_bug_fired=forward_bug,
        formed_singleton=singleton,
        rejoined=rejoined,
    )


# ----------------------------------------------------------------------
# sub-experiment 2: drop heartbeats to others only
# ----------------------------------------------------------------------

def execute_kick_rejoin(*, seed: int = 0, observe_for: float = 120.0):
    """Drive the drop-heartbeats-to-others scenario; returns the cluster."""
    cluster = build_gmp_cluster(WORLD, seed=seed)
    cluster.start()
    cluster.run_until(10.0)
    assert cluster.all_in_one_group()

    cluster.pfis[FAULTY].set_send_filter(
        drop_heartbeats_filter(to_others_only=True, local_address=FAULTY))
    cluster.run_until(10.0 + observe_for)
    return cluster


def run_kick_rejoin_cycle(*, seed: int = 0,
                          observe_for: float = 120.0) -> KickRejoinResult:
    """Drop only outbound heartbeats to other members; watch the cycle."""
    cluster = execute_kick_rejoin(seed=seed, observe_for=observe_for)
    # kicked out: the leader adopts a view without FAULTY; rejoined: a
    # later leader view contains FAULTY again
    views = [tuple(e.get("members")) for e in
             cluster.trace.entries("gmp.view_adopted", node=LEADER)
             if e.time > 10.0]
    kicked = rejoined = 0
    was_in = True
    for members in views:
        now_in = FAULTY in members
        if was_in and not now_in:
            kicked += 1
        elif not was_in and now_in:
            rejoined += 1
        was_in = now_in
    return KickRejoinResult(
        times_kicked_out=kicked,
        times_rejoined=rejoined,
        cycled=kicked >= 2 and rejoined >= 1,
    )


# ----------------------------------------------------------------------
# sub-experiment 3: drop ACKs of MEMBERSHIP_CHANGE at the leader
# ----------------------------------------------------------------------

def execute_ack_drop(*, seed: int = 0):
    """Drive the ACK-drop scenario; returns the cluster."""
    cluster = build_gmp_cluster(WORLD, seed=seed)
    cluster.start(1, 2)
    cluster.run_until(8.0)

    def drop_joiner_acks(ctx: ScriptContext) -> None:
        if ctx.msg_type() == "ACK" and ctx.field("sender") == JOINER:
            ctx.log("ACK from joiner dropped")
            ctx.drop()
    cluster.pfis[LEADER].set_receive_filter(drop_joiner_acks)

    cluster.start(JOINER)
    cluster.run_until(60.0)
    return cluster


def run_ack_drop(*, seed: int = 0) -> AckDropResult:
    """The leader never sees compsun1's ACKs; compsun1 is never admitted."""
    cluster = execute_ack_drop(seed=seed)
    trace = cluster.trace
    joiner = cluster.daemons[JOINER]
    committed = any(JOINER in e.get("members")
                    for e in trace.entries("gmp.commit_sent", node=LEADER))
    proclaims_late = [e for e in trace.entries("gmp.send", node=JOINER,
                                               msg_kind="PROCLAIM")
                      if e.time > 30.0]
    others = all(cluster.daemons[a].view.members == (1, 2) for a in (1, 2))
    return AckDropResult(
        joiner_ever_committed=committed or JOINER in
        cluster.daemons[LEADER].view.members,
        joiner_mc_timeouts=trace.count("gmp.mc_timeout", node=JOINER),
        joiner_kept_proclaiming=bool(proclaims_late),
        others_formed_group_without_joiner=others,
    )


# ----------------------------------------------------------------------
# sub-experiment 4: drop COMMITs at the joiner
# ----------------------------------------------------------------------

def execute_commit_drop(*, seed: int = 0):
    """Drive the COMMIT-drop scenario; returns the cluster."""
    cluster = build_gmp_cluster(WORLD, seed=seed)
    cluster.start(1, 2)
    cluster.run_until(8.0)

    def drop_commits(ctx: ScriptContext) -> None:
        if ctx.msg_type() == "COMMIT":
            ctx.log("COMMIT dropped")
            ctx.drop()
    cluster.pfis[JOINER].set_receive_filter(drop_commits)

    cluster.start(JOINER)
    cluster.run_until(60.0)
    return cluster


def run_commit_drop(*, seed: int = 0) -> CommitDropResult:
    """compsun1 never sees COMMITs: stuck IN_TRANSITION, then kicked."""
    cluster = execute_commit_drop(seed=seed)
    trace = cluster.trace
    in_transition = trace.count("gmp.in_transition", node=JOINER) > 0
    commits_with_joiner = [e for e in trace.entries("gmp.commit_sent",
                                                    node=LEADER)
                           if JOINER in e.get("members")]
    kicked = False
    if commits_with_joiner:
        first_commit = commits_with_joiner[0].time
        kicked = any(JOINER not in e.get("members")
                     for e in trace.entries("gmp.view_adopted", node=LEADER)
                     if e.time > first_commit)
    stable_in_group = any(
        len(e.get("members", ())) > 1
        for e in trace.entries("gmp.view_adopted", node=JOINER))
    return CommitDropResult(
        joiner_entered_transition=in_transition,
        joiner_ever_stable_in_group=stable_in_group,
        others_committed_joiner=bool(commits_with_joiner),
        joiner_kicked_after_commit=kicked,
        joiner_mc_timeouts=trace.count("gmp.mc_timeout", node=JOINER),
    )


def run_all(seed: int = 0) -> Dict[str, object]:
    """Table 5: all four sub-experiments (buggy + fixed where relevant)."""
    return {
        "self_death_buggy": run_self_death(bugs_on=True, seed=seed),
        "self_death_fixed": run_self_death(bugs_on=False, seed=seed),
        "suspend_buggy": run_self_death(bugs_on=True, via_suspend=True,
                                        seed=seed),
        "kick_rejoin": run_kick_rejoin_cycle(seed=seed),
        "ack_drop": run_ack_drop(seed=seed),
        "commit_drop": run_commit_drop(seed=seed),
    }


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import gmp_pack
    return gmp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite.

    Only the fixed-daemon variants: the buggy variants violate by
    design and belong to the known-bug detection tests.
    """
    yield ("packet_interruption/self_death_fixed",
           execute_self_death(bugs_on=False, seed=seed).trace)
    yield ("packet_interruption/suspend_fixed",
           execute_self_death(bugs_on=False, via_suspend=True,
                              seed=seed).trace)
    yield ("packet_interruption/kick_rejoin",
           execute_kick_rejoin(seed=seed).trace)
    yield ("packet_interruption/ack_drop",
           execute_ack_drop(seed=seed).trace)
    yield ("packet_interruption/commit_drop",
           execute_commit_drop(seed=seed).trace)
