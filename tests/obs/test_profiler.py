"""The tclish script profiler: opt-in hook in the compiled-exec path."""

from repro.core.script import TclishFilter
from repro.core.tclish import Interp
from repro.obs.profiler import ScriptProfiler


class TestInterpHook:
    def test_disabled_by_default(self):
        interp = Interp()
        assert interp.profiler is None
        interp.eval("set x 1")  # no profiler -> nothing recorded anywhere

    def test_records_command_counts_and_time(self):
        interp = Interp()
        profiler = ScriptProfiler()
        interp.profiler = profiler
        interp.eval("set x 0\nincr x\nincr x")
        assert profiler.commands["set"][0] == 1
        assert profiler.commands["incr"][0] == 2
        assert profiler.commands["incr"][1] >= 0.0

    def test_control_flow_bodies_are_charged_inclusively(self):
        interp = Interp()
        profiler = ScriptProfiler()
        interp.profiler = profiler
        interp.eval("set x 0\nwhile {$x < 3} {incr x}")
        assert profiler.commands["incr"][0] == 3
        assert profiler.commands["while"][0] == 1
        # inclusive: the while command's time covers its body
        assert profiler.commands["while"][1] >= profiler.commands["incr"][1]


class TestFilterProfiling:
    def test_enable_profiler_instruments_both_levels(self, harness):
        script = TclishFilter("set n [expr $n + 1]", init_script="set n 0",
                              name="counting")
        profiler = script.enable_profiler()
        harness.pfi.set_send_filter(script)
        harness.send_down("DATA")
        harness.send_down("DATA")
        assert profiler.scripts["counting"][0] == 2
        assert profiler.commands["expr"][0] == 2

    def test_shared_profiler_aggregates_filters(self, harness):
        shared = ScriptProfiler()
        send = TclishFilter("set a 1", name="send-side")
        receive = TclishFilter("set b 2", name="receive-side")
        send.enable_profiler(shared)
        receive.enable_profiler(shared)
        harness.pfi.set_send_filter(send)
        harness.pfi.set_receive_filter(receive)
        harness.send_down("DATA")
        harness.send_up("DATA")
        assert shared.scripts["send-side"][0] == 1
        assert shared.scripts["receive-side"][0] == 1

    def test_disable_profiler_restores_bare_path(self, harness):
        script = TclishFilter("set a 1", name="f")
        profiler = script.enable_profiler()
        harness.pfi.set_send_filter(script)
        harness.send_down("DATA")
        script.disable_profiler()
        harness.send_down("DATA")
        assert profiler.scripts["f"][0] == 1
        assert script.interp.profiler is None


class TestAggregation:
    def test_merge_adds_counts_and_times(self):
        a = ScriptProfiler()
        a.record_command("set", 0.5)
        a.record_script("f", 1.0)
        b = ScriptProfiler()
        b.record_command("set", 0.25)
        b.record_command("puts", 0.1)
        a.merge(b)
        assert a.commands["set"] == [2, 0.75]
        assert a.commands["puts"] == [1, 0.1]
        assert a.scripts["f"] == [1, 1.0]

    def test_rows_sorted_by_total_desc(self):
        profiler = ScriptProfiler()
        profiler.record_command("cheap", 0.1)
        profiler.record_command("hot", 2.0)
        assert [row[0] for row in profiler.command_rows()] == ["hot",
                                                               "cheap"]

    def test_report_text(self):
        profiler = ScriptProfiler()
        profiler.record_script("f", 0.5)
        profiler.record_command("set", 0.25)
        text = profiler.report()
        assert "f" in text and "set" in text
        assert ScriptProfiler().report() == "(profiler captured nothing)"
