"""Property-based tests for segment serialization and sequence arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.segment import (SEQ_MOD, Segment, seq_add, seq_leq, seq_lt,
                               seq_sub)

ports = st.integers(min_value=0, max_value=0xFFFF)
seqs = st.integers(min_value=0, max_value=SEQ_MOD - 1)
flags = st.integers(min_value=0, max_value=0x3F)
windows = st.integers(min_value=0, max_value=0xFFFF)
payloads = st.binary(max_size=600)


@given(ports, ports, seqs, seqs, flags, windows, payloads)
@settings(max_examples=200)
def test_serialization_roundtrip(src, dst, seq, ack, flag_bits, window,
                                 payload):
    seg = Segment(src_port=src, dst_port=dst, seq=seq, ack=ack,
                  flags=flag_bits, window=window, payload=payload)
    parsed = Segment.from_bytes(seg.to_bytes())
    assert parsed.src_port == src
    assert parsed.dst_port == dst
    assert parsed.seq == seq
    assert parsed.ack == ack
    assert parsed.flags == flag_bits
    assert parsed.window == window
    assert parsed.payload == payload


@given(ports, ports, seqs, seqs, flags, windows,
       st.binary(min_size=1, max_size=100),
       st.integers(min_value=0))
@settings(max_examples=200)
def test_single_byte_corruption_always_detected(src, dst, seq, ack,
                                                flag_bits, window, payload,
                                                position):
    seg = Segment(src_port=src, dst_port=dst, seq=seq, ack=ack,
                  flags=flag_bits, window=window, payload=payload)
    wire = bytearray(seg.to_bytes())
    index = position % len(wire)
    wire[index] ^= 0x5A
    try:
        Segment.from_bytes(bytes(wire))
        detected = False
    except ValueError:
        detected = True
    assert detected


@given(seqs, st.integers(min_value=0, max_value=2**20))
def test_seq_add_sub_inverse(a, n):
    assert seq_sub(seq_add(a, n), a) == n % SEQ_MOD


@given(seqs)
def test_seq_lt_irreflexive(a):
    assert not seq_lt(a, a)
    assert seq_leq(a, a)


@given(seqs, st.integers(min_value=1, max_value=SEQ_MOD // 2 - 1))
def test_seq_lt_respects_window(a, delta):
    """a < a+delta whenever delta is within half the sequence space."""
    b = seq_add(a, delta)
    assert seq_lt(a, b)
    assert not seq_lt(b, a)
