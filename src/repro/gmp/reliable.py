"""Reliable communication layer over UDP.

"A Reliable communication layer was implemented using retransmission
timers and sequence numbers."  This layer provides per-peer, at-most-once,
bounded-retry delivery for GMP control messages; heartbeats are marked
unreliable and bypass the machinery (a lost heartbeat is itself a signal).

Per peer, each direction keeps:

- a send sequence number; unacknowledged messages are retransmitted up to
  ``max_retries`` times at ``retry_interval`` before being abandoned;
- a receive dedup window: a message with an already-seen sequence number
  is acknowledged again but not delivered up.

The layer sits *above* the PFI layer in the GMP stack
(gmd / reliable / **PFI** / UDP), matching Figure 5 of the paper: the PFI
tool was inserted "into the communication interface code where udp send
and receive calls were made", so injected faults see reliable-layer
retransmissions as distinct wire messages to drop or delay.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Set, Tuple

from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.netsim import kinds as K


@dataclass
class RelHeader:
    """Reliable-layer header."""

    seq: int
    is_ack: bool = False
    reliable: bool = True

    def clone(self) -> "RelHeader":
        """Message header ``clone()`` protocol: cheap dataclass replace."""
        return replace(self)


@dataclass
class _Pending:
    msg: Message
    dst: int
    seq: int
    retries: int = 0
    timer: Optional[Timer] = None


class ReliableChannel(Protocol):
    """Bounded-retry reliable delivery above the PFI/UDP layers."""

    def __init__(self, local_address: int, scheduler: Scheduler, *,
                 max_retries: int = 3, retry_interval: float = 0.4,
                 trace: Optional[TraceRecorder] = None,
                 name: str = "reliable"):
        super().__init__(name)
        self.local_address = local_address
        self.scheduler = scheduler
        self.max_retries = max_retries
        self.retry_interval = retry_interval
        self.trace = trace
        self._next_seq: Dict[int, int] = {}
        self._pending: Dict[Tuple[int, int], _Pending] = {}
        self._seen: Dict[int, Set[int]] = {}
        self.abandoned_count = 0
        self.duplicate_count = 0

    # ------------------------------------------------------------------
    # downward path
    # ------------------------------------------------------------------

    def push(self, msg: Message) -> None:
        dst = msg.meta.get("dst")
        if dst is None:
            raise ValueError("reliable layer needs meta['dst']")
        reliable = msg.meta.get("reliable", True)
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        msg.push_header(RelHeader(seq=seq, reliable=reliable))
        if reliable:
            pending = _Pending(msg=msg, dst=dst, seq=seq)
            pending.timer = Timer(self.scheduler, self._retry,
                                  args=(pending,),
                                  name=f"rel/{self.local_address}->{dst}/{seq}")
            pending.timer.start(self.retry_interval)
            self._pending[(dst, seq)] = pending
        self.send_down(self._wire_copy(msg))

    def _retry(self, pending: _Pending) -> None:
        key = (pending.dst, pending.seq)
        if key not in self._pending:
            return
        if pending.retries >= self.max_retries:
            del self._pending[key]
            self.abandoned_count += 1
            self._record(K.REL_ABANDON, dst=pending.dst, seq=pending.seq)
            return
        pending.retries += 1
        wire = self._wire_copy(pending.msg)
        self._record(K.REL_RETRANSMIT, dst=pending.dst, seq=pending.seq,
                     attempt=pending.retries, uid=wire.uid,
                     parent=pending.msg.uid, relation="retransmit")
        self.send_down(wire)
        pending.timer.start(self.retry_interval)

    def _wire_copy(self, msg: Message) -> Message:
        """Each wire transmission is a distinct message object so the PFI
        layer can drop one retransmission without corrupting the pending
        original."""
        return msg.copy()

    # ------------------------------------------------------------------
    # upward path
    # ------------------------------------------------------------------

    def pop(self, msg: Message) -> None:
        header = msg.top_header
        if not isinstance(header, RelHeader):
            self.send_up(msg)
            return
        msg.pop_header()
        src = msg.meta.get("src")
        if header.is_ack:
            pending = self._pending.pop((src, header.seq), None)
            if pending is not None and pending.timer is not None:
                pending.timer.stop()
            return
        if header.reliable:
            self._send_ack(src, header.seq)
            seen = self._seen.setdefault(src, set())
            if header.seq in seen:
                self.duplicate_count += 1
                self._record(K.REL_DUPLICATE, src=src, seq=header.seq)
                return
            seen.add(header.seq)
        self.send_up(msg)

    def _send_ack(self, dst: int, seq: int) -> None:
        ack = Message(payload=b"")
        ack.push_header(RelHeader(seq=seq, is_ack=True))
        ack.meta["dst"] = dst
        self.send_down(ack)

    def _record(self, kind: str, **attrs: Any) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now,
                              node=self.local_address, **attrs)
