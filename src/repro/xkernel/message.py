"""Messages flowing through a protocol stack.

A :class:`Message` carries an application payload plus a stack of headers.
Each protocol layer pushes its header when the message travels down the
stack and pops it when the message travels back up, mirroring the x-Kernel
message model.  Headers are ordinary Python objects (usually dataclasses
such as :class:`repro.tcp.segment.Segment`); the PFI layer's recognition
stubs inspect them to classify messages by type.

Messages also carry a free-form ``meta`` dictionary for bookkeeping that is
not part of the wire format -- e.g. the PFI layer stamps injected messages,
and experiments tag messages for later trace correlation.  ``meta`` is
copied shallowly by :meth:`copy`, headers and payload deeply enough to make
duplicate-and-modify fault injection safe.
"""

from __future__ import annotations

import copy as _copy
import itertools
from typing import Any, Dict, List, Optional

_message_ids = itertools.count(1)


class Message:
    """A payload with a header stack, travelling through protocol layers."""

    __slots__ = ("payload", "headers", "meta", "uid")

    def __init__(self, payload: Any = b"", headers: Optional[List[Any]] = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.payload = payload
        self.headers: List[Any] = list(headers) if headers else []
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.uid = next(_message_ids)

    # ------------------------------------------------------------------
    # header stack
    # ------------------------------------------------------------------

    def push_header(self, header: Any) -> "Message":
        """Add a header on the way down the stack.  Returns self."""
        self.headers.append(header)
        return self

    def pop_header(self) -> Any:
        """Remove and return the outermost header on the way up the stack."""
        if not self.headers:
            raise IndexError("message has no headers to pop")
        return self.headers.pop()

    @property
    def top_header(self) -> Any:
        """The outermost header (most recently pushed), or None."""
        return self.headers[-1] if self.headers else None

    def find_header(self, header_type: type) -> Optional[Any]:
        """The innermost-to-outermost search for a header of a given type."""
        for header in reversed(self.headers):
            if isinstance(header, header_type):
                return header
        return None

    # ------------------------------------------------------------------
    # copying / size
    # ------------------------------------------------------------------

    def copy(self) -> "Message":
        """Deep-enough copy for duplicate/modify fault injection.

        Headers are deep-copied so mutating a duplicate's TCP header does
        not corrupt the original; bytes payloads are immutable and shared,
        other payloads are deep-copied.  The copy receives a fresh uid.
        """
        payload = self.payload
        if not isinstance(payload, (bytes, str, int, float, type(None))):
            payload = _copy.deepcopy(payload)
        clone = Message(payload, headers=_copy.deepcopy(self.headers),
                        meta=dict(self.meta))
        clone.meta["copied_from"] = self.uid
        return clone

    def __len__(self) -> int:
        """Payload length in bytes when the payload is bytes-like, else 0."""
        if isinstance(self.payload, (bytes, bytearray)):
            return len(self.payload)
        if isinstance(self.payload, str):
            return len(self.payload.encode())
        return 0

    def __repr__(self) -> str:
        names = [type(h).__name__ for h in self.headers]
        return (f"Message(uid={self.uid}, headers={names}, "
                f"payload_len={len(self)})")
