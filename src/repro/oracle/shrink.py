"""Shrinking violating fuzz cases into deterministic repro artifacts.

A finding from :func:`repro.oracle.fuzz.run_fuzz` is typically noisy:
several clauses, only one of which matters.  :func:`shrink_case` reduces
it while preserving the verdict:

1. **ddmin over clauses** -- classic delta debugging on the script's
   clause list; the result is always a *subsequence* of the original
   clauses (order preserved, nothing rewritten);
2. **seed minimization** -- the smallest small integer case seed that
   still violates replaces the derived 32-bit one.

The predicate throughout is "the run still reports the target violation
code", so shrinking can never trade one bug for another unnoticed.

The shrunk case is frozen into a JSON **reproduction artifact** carrying
the exact campaign configuration plus the expected violation
fingerprints.  Fingerprints deliberately exclude message uids (process-
global counters; see ``VOLATILE_ATTRS`` in :mod:`repro.analysis.export`)
so a replay in a fresh process compares byte-identically:
:func:`replay_artifact` re-runs the case and diffs codes, violation
count, and the stored fingerprint prefix against the recorded ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.netsim import kinds as K
from repro.obs.journal import Journal
from repro.oracle.fuzz import (Finding, ForkEngine, FuzzCase, pack_for,
                               run_case)
from repro.oracle.grammar import Clause

ARTIFACT_VERSION = 1

#: fingerprints stored per artifact; storms would otherwise bloat the
#: committed corpus, and a fixed prefix diffs just as decisively
MAX_FINGERPRINTS = 50

#: candidate replacement seeds, smallest first
SEED_CANDIDATES = (0, 1, 2)


def _probe_engine(case: FuzzCase, campaign_seed: int,
                  pool=None) -> Optional[ForkEngine]:
    """A checkpointed probe engine for shrinking ``case``, or None.

    ddmin probes share the case's script-free prefix (same protocol,
    same target, stock install depth), so one captured checkpoint
    serves every probe.  Engine results at the default depth are
    byte-identical to :func:`~repro.oracle.fuzz.run_case` -- the
    property suite pins it -- which keeps the shrink predicate exactly
    the predicate the cold replayer applies.  ``pool`` (a
    :class:`~repro.core.checkpoint.CheckpointPool`) lets the engine
    reuse a prefix an earlier consumer -- the fuzz sweep itself, or a
    sibling finding's shrinker -- already captured.
    """
    return ForkEngine(case.protocol, campaign_seed=campaign_seed,
                      pool=pool)


def _codes_of(case: FuzzCase, campaign_seed: int, *,
              engine: Optional[ForkEngine] = None) -> set:
    if engine is not None:
        result = engine.run_case(case, oracle=pack_for(case.protocol))
    else:
        result = run_case(case, campaign_seed=campaign_seed)
    return {v.code for v in (result.violations or ())}


@dataclass
class ShrinkStats:
    """How much work shrinking did, for reporting."""

    runs: int = 0
    clauses_before: int = 0
    clauses_after: int = 0
    seed_before: int = 0
    seed_after: int = 0


def ddmin(items: Sequence, test) -> List:
    """Minimal order-preserving subsequence of ``items`` passing ``test``.

    Standard delta debugging (Zeller's ddmin): repeatedly drop chunk
    complements at increasing granularity.  ``test`` receives a candidate
    subsequence and returns truth; ``test(items)`` is assumed true.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        size = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), size):
            candidate = items[:start] + items[start + size:]
            if candidate and test(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_case(case: FuzzCase, code: str, *, campaign_seed: int = 0,
                checkpoint: bool = True, pool=None, journal=None
                ) -> "tuple[FuzzCase, ShrinkStats]":
    """Reduce ``case`` while it still reports ``code``.

    With ``checkpoint`` (the default) every ddmin probe forks the
    case's warmed prefix checkpoint instead of cold-starting; probe
    verdicts are identical either way, the forked path just reaches
    them faster.  ``checkpoint=False`` keeps the historical cold path.

    ``journal`` (a :class:`~repro.obs.journal.Journal` or a path)
    records one ``campaign.shrink_step`` per ddmin/seed probe -- clause
    count, whether the probe still violated -- so an interrupted shrink
    shows how far it got.  Pass the fuzz sweep's own journal to append
    the shrink trail to the same flight record.  ``pool`` (a shared
    :class:`~repro.core.checkpoint.CheckpointPool`) lets this shrink
    fork a prefix the fuzz sweep or a sibling shrink already captured.
    """
    stats = ShrinkStats(clauses_before=len(case.script.clauses),
                        seed_before=case.case_seed)
    engine = (_probe_engine(case, campaign_seed, pool=pool)
              if checkpoint else None)
    journal_obj, journal_owned = Journal.ensure(journal)
    if journal_owned:
        journal_obj.start("shrink", code=code, case=case.script.name,
                          target=case.target, campaign_seed=campaign_seed,
                          clauses=len(case.script.clauses))

    def still_violates(candidate: FuzzCase) -> bool:
        stats.runs += 1
        verdict = code in _codes_of(candidate, campaign_seed, engine=engine)
        if journal_obj is not None:
            journal_obj.record(
                K.CAMPAIGN_SHRINK_STEP, probe=stats.runs,
                case=candidate.script.name,
                clauses=len(candidate.script.clauses),
                case_seed=candidate.case_seed, code=code,
                still_violates=verdict)
        return verdict

    try:
        if not still_violates(case):
            raise ValueError(
                f"case {case.script.name} does not reproduce {code} under "
                f"campaign seed {campaign_seed}; nothing to shrink")

        def with_clauses(clauses: Sequence[Clause]) -> FuzzCase:
            return FuzzCase(
                script=case.script.with_clauses(
                    clauses, name=f"{case.script.name}_min"),
                target=case.target, case_seed=case.case_seed)

        clauses = ddmin(case.script.clauses,
                        lambda cand: still_violates(with_clauses(cand)))
        shrunk = with_clauses(clauses)

        for seed in SEED_CANDIDATES:
            if seed == shrunk.case_seed:
                break
            candidate = FuzzCase(script=shrunk.script, target=shrunk.target,
                                 case_seed=seed)
            if still_violates(candidate):
                shrunk = candidate
                break

        stats.clauses_after = len(shrunk.script.clauses)
        stats.seed_after = shrunk.case_seed
        if journal_owned:
            journal_obj.record(
                K.CAMPAIGN_END, status="ok", executed=stats.runs,
                clauses_before=stats.clauses_before,
                clauses_after=stats.clauses_after,
                seed_after=stats.seed_after)
        return shrunk, stats
    finally:
        if journal_owned:
            journal_obj.close()


# ----------------------------------------------------------------------
# reproduction artifacts
# ----------------------------------------------------------------------

@dataclass
class ReproArtifact:
    """A self-contained, committable reproduction of one violation."""

    case: FuzzCase
    code: str
    campaign_seed: int
    codes: List[str]
    violation_count: int
    fingerprints: List[List]

    def to_dict(self) -> Dict[str, object]:
        return {"version": ARTIFACT_VERSION, "code": self.code,
                "campaign_seed": self.campaign_seed,
                "case": self.case.to_dict(), "codes": list(self.codes),
                "violation_count": self.violation_count,
                "fingerprints": [list(fp) for fp in self.fingerprints]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReproArtifact":
        if data.get("version") != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported repro artifact version {data.get('version')!r}")
        return cls(case=FuzzCase.from_dict(data["case"]), code=data["code"],
                   campaign_seed=data["campaign_seed"],
                   codes=list(data["codes"]),
                   violation_count=data["violation_count"],
                   fingerprints=[list(fp) for fp in data["fingerprints"]])

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReproArtifact":
        return cls.from_dict(json.loads(Path(path).read_text()))


def make_artifact(case: FuzzCase, code: str, *,
                  campaign_seed: int = 0) -> ReproArtifact:
    """Run ``case`` once more and freeze its verdict into an artifact."""
    result = run_case(case, campaign_seed=campaign_seed)
    violations = result.violations or []
    if code not in {v.code for v in violations}:
        raise ValueError(f"case does not reproduce {code}")
    return ReproArtifact(
        case=case, code=code, campaign_seed=campaign_seed,
        codes=sorted({v.code for v in violations}),
        violation_count=len(violations),
        fingerprints=[list(v.fingerprint())
                      for v in violations[:MAX_FINGERPRINTS]])


@dataclass
class ReplayResult:
    """Outcome of replaying one artifact."""

    artifact: ReproArtifact
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    observed_codes: List[str] = field(default_factory=list)


def replay_artifact(artifact: Union[ReproArtifact, str, Path]
                    ) -> ReplayResult:
    """Re-run an artifact's case and compare against the frozen verdict."""
    if not isinstance(artifact, ReproArtifact):
        artifact = ReproArtifact.load(artifact)
    result = run_case(artifact.case, campaign_seed=artifact.campaign_seed)
    violations = result.violations or []
    observed_codes = sorted({v.code for v in violations})
    mismatches: List[str] = []
    if observed_codes != artifact.codes:
        mismatches.append(f"codes: expected {artifact.codes}, "
                          f"observed {observed_codes}")
    if len(violations) != artifact.violation_count:
        mismatches.append(f"violation count: expected "
                          f"{artifact.violation_count}, observed "
                          f"{len(violations)}")
    observed_fps = [list(v.fingerprint())
                    for v in violations[:MAX_FINGERPRINTS]]
    if observed_fps != artifact.fingerprints:
        mismatches.append("fingerprints diverged from the recorded run")
    return ReplayResult(artifact=artifact, ok=not mismatches,
                        mismatches=mismatches,
                        observed_codes=observed_codes)


def shrink_finding(finding: Finding, *, campaign_seed: int = 0,
                   checkpoint: bool = True, pool=None, journal=None
                   ) -> "tuple[ReproArtifact, ShrinkStats]":
    """Shrink one fuzz finding and freeze the result.

    Probes may run checkpointed (see :func:`shrink_case`); the final
    artifact is always frozen from a cold :func:`~repro.oracle.fuzz
    .run_case` replay, so a committed artifact never depends on the
    checkpoint layer to reproduce.  ``pool`` and ``journal`` are
    forwarded to :func:`shrink_case`.
    """
    code = finding.codes[0]
    shrunk, stats = shrink_case(finding.case, code,
                                campaign_seed=campaign_seed,
                                checkpoint=checkpoint, pool=pool,
                                journal=journal)
    return make_artifact(shrunk, code, campaign_seed=campaign_seed), stats


def artifact_name(artifact: ReproArtifact) -> str:
    """The canonical corpus filename for one artifact.

    Content-addressed suffix: distinct shrunk scripts targeting the same
    (code, variant) pair get distinct, rerun-stable filenames.
    """
    content = (f"{artifact.case.script.source}\n{artifact.case.script.init}"
               f"\n{artifact.case.script.direction}\n{artifact.case.case_seed}")
    digest = hashlib.sha256(content.encode()).hexdigest()[:8]
    return (f"{artifact.case.protocol}_{artifact.code.lower()}_"
            f"{artifact.case.target}_{digest}.json")
