"""Fold a campaign journal into summaries, scorecards and reports.

A journal (:mod:`repro.obs.journal`) is the durable, append-ordered
record of one sweep; this module is its read side.
:func:`summarize_journal` folds the event stream into a
:class:`CampaignSummary` -- per-run rows, violation-code histogram,
phases, checkpoint captures, completion state, torn-tail forensics --
from which the renderers produce:

- :func:`render_text` -- the partial (or complete) scorecard.  For a
  sweep killed mid-run this reproduces exactly what the in-memory
  report knew at the moment of the last complete ``campaign.run_end``
  event, which is the acceptance contract of the flight recorder;
- :func:`summary_to_json` -- machine-readable form (``repro report
  --campaign --format json``), also what the history store
  (:mod:`repro.obs.history`) folds into its per-sweep rows;
- :func:`render_html` -- a self-contained single-file report ranking
  fault scenarios by bug yield.

Bug-yield ranking (:func:`rank_scenarios`) orders scenarios by what
they bought the campaign: oracle violations first (weight 10 per
violation), then coverage keys the run contributed, then outcome
rarity -- a run whose violation-code signature is shared by few other
runs outranks one reproducing a common outcome (``1/frequency``).
"""

from __future__ import annotations

import hashlib
import html as _html
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.netsim import kinds as K
from repro.obs.journal import (JournalReplay, SCHEMA_VERSION,
                               replay_journal)
from repro.obs.progress import rate_of

#: ranking weight of one oracle violation, relative to one coverage key
VIOLATION_WEIGHT = 10.0


@dataclass
class RunRow:
    """One executed configuration/case/schedule, replayed."""

    index: int
    label: str
    t: float
    target: Optional[str] = None
    codes: List[str] = field(default_factory=list)
    violations: int = 0
    new_coverage: int = 0
    corpus: bool = False
    cached: bool = False
    ok: bool = True
    outcome: Optional[str] = None
    telemetry: Optional[Dict[str, Any]] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def stable_key(self) -> Tuple:
        """The wall-clock-free identity of this row.

        Two replays of the same deterministic sweep agree on this key
        even though ``t`` and telemetry wall times differ -- the
        kill-and-replay test compares prefixes of these.
        """
        return (self.index, self.label, self.target, tuple(self.codes),
                self.violations, self.new_coverage, self.corpus,
                self.ok, self.outcome)


@dataclass
class CampaignSummary:
    """Everything one journal says about its sweep."""

    path: Optional[Path]
    engine: str = "unknown"
    schema: Optional[int] = None
    start: Dict[str, Any] = field(default_factory=dict)
    runs: List[RunRow] = field(default_factory=list)
    worker_errors: List[Dict[str, Any]] = field(default_factory=list)
    checkpoints: List[Dict[str, Any]] = field(default_factory=list)
    shrink_steps: int = 0
    #: (name, start t, end t or None) per recorded phase span
    phases: List[Tuple[str, float, Optional[float]]] = field(
        default_factory=list)
    end: Optional[Dict[str, Any]] = None
    duration_s: float = 0.0
    torn_tail_bytes: int = 0

    # -- derived ---------------------------------------------------------

    @property
    def completed(self) -> bool:
        return self.end is not None

    @property
    def executed(self) -> int:
        return len(self.runs)

    @property
    def total(self) -> Optional[int]:
        for key in ("budget", "configs", "max_schedules"):
            value = self.start.get(key)
            if isinstance(value, int):
                return value
        return None

    @property
    def findings(self) -> List[RunRow]:
        return [row for row in self.runs if row.codes]

    @property
    def coverage_total(self) -> int:
        latest = 0
        for row in self.runs:
            value = row.data.get("coverage_total")
            if isinstance(value, int):
                latest = value
        return latest

    @property
    def corpus_size(self) -> int:
        return sum(1 for row in self.runs if row.corpus)

    @property
    def rate(self) -> float:
        """Runs per wall second, from journal timestamps."""
        return rate_of(self.executed, self.duration_s)

    def codes_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for row in self.runs:
            for code in row.codes:
                histogram[code] = histogram.get(code, 0) + 1
        return histogram

    def prefix_sharing(self) -> Optional[Dict[str, Any]]:
        """Amortization scorecard when the sweep ran prefix-grouped.

        Folds the grouped dispatcher's journal trail -- capture events
        carrying a ``prefix`` key, run rows flagged ``forked``, and the
        ``campaign.end`` counters -- into per-group "capture hits /
        forks" rows.  ``None`` for sweeps that never grouped (flat
        campaigns, fuzz, explore), so renderers stay byte-identical for
        historical journals.
        """
        captures = [c for c in self.checkpoints if c.get("prefix")]
        rows = [row for row in self.runs
                if row.data.get("prefix") is not None]
        end = self.end or {}
        if not captures and not rows and "prefix_captures" not in end:
            return None
        groups: Dict[str, Dict[str, int]] = {}

        def group(key: str) -> Dict[str, int]:
            return groups.setdefault(
                key, {"captures": 0, "runs": 0, "forks": 0, "cached": 0})

        for capture in captures:
            group(str(capture.get("prefix")))["captures"] += 1
        for row in rows:
            stats = group(str(row.data["prefix"]))
            stats["runs"] += 1
            if row.data.get("forked"):
                stats["forks"] += 1
            if row.cached:
                stats["cached"] += 1
        return {
            "captures": int(end.get("prefix_captures", len(captures))),
            "forks": int(end.get("prefix_forks",
                                 sum(g["forks"]
                                     for g in groups.values()))),
            "fallbacks": int(end.get("prefix_fallbacks", 0)),
            "groups": groups,
        }

    def fingerprint(self) -> str:
        """Content hash of the sweep configuration (not its outcome).

        Two sweeps with the same engine and ``campaign.start`` payload
        are runs of the same experiment; the history store uses this to
        pair sweeps for delta reporting.
        """
        payload = {k: v for k, v in sorted(self.start.items())}
        blob = json.dumps({"engine": self.engine, "start": payload},
                          sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def summarize_journal(source: Union[str, Path, JournalReplay]
                      ) -> CampaignSummary:
    """Fold a journal (path or replay) into a :class:`CampaignSummary`.

    When the file holds several appended sweeps, the last
    ``campaign.start`` segment wins -- a journal is one flight record,
    re-recording into the same file reads as the latest flight.
    """
    replay = (source if isinstance(source, JournalReplay)
              else replay_journal(source))
    summary = CampaignSummary(path=replay.path)
    open_phases: Dict[str, float] = {}
    for event in replay.events:
        data = event.data
        if event.kind == K.CAMPAIGN_START:
            summary = CampaignSummary(path=replay.path)
            open_phases = {}
            summary.engine = str(data.get("engine", "unknown"))
            summary.schema = data.get("schema")
            summary.start = {k: v for k, v in data.items()
                             if k not in ("engine", "schema")}
        elif event.kind == K.CAMPAIGN_RUN_END:
            summary.runs.append(RunRow(
                index=int(data.get("index", len(summary.runs))),
                label=str(data.get("label", data.get("case", "?"))),
                t=event.t,
                target=data.get("target"),
                codes=[str(c) for c in data.get("codes", [])],
                violations=int(data.get("violations", 0)),
                new_coverage=int(data.get("new_coverage", 0)),
                corpus=bool(data.get("corpus", False)),
                cached=bool(data.get("cached", False)),
                ok=bool(data.get("ok", not data.get("codes"))),
                outcome=data.get("outcome"),
                telemetry=data.get("telemetry"),
                data=data))
        elif event.kind == K.CAMPAIGN_WORKER_ERROR:
            summary.worker_errors.append(data)
        elif event.kind == K.CAMPAIGN_CHECKPOINT_CAPTURE:
            summary.checkpoints.append(data)
        elif event.kind == K.CAMPAIGN_SHRINK_STEP:
            summary.shrink_steps += 1
        elif event.kind == K.CAMPAIGN_PHASE_START:
            open_phases[str(data.get("name", "?"))] = event.t
        elif event.kind == K.CAMPAIGN_PHASE_END:
            name = str(data.get("name", "?"))
            summary.phases.append((name, open_phases.pop(name, event.t),
                                   event.t))
        elif event.kind == K.CAMPAIGN_END:
            summary.end = data
        summary.duration_s = event.t
    for name, started in open_phases.items():
        summary.phases.append((name, started, None))
    if replay.torn_tail is not None:
        summary.torn_tail_bytes = len(replay.torn_tail)
    return summary


# ----------------------------------------------------------------------
# bug-yield ranking
# ----------------------------------------------------------------------

@dataclass
class RankedScenario:
    """One scenario with its bug-yield decomposition."""

    row: RunRow
    rarity: float
    score: float


def rank_scenarios(summary: CampaignSummary,
                   limit: Optional[int] = None) -> List[RankedScenario]:
    """Scenarios ordered by bug yield, best first.

    ``score = violations * 10 + coverage keys contributed + 1/outcome
    frequency``: violations dominate, coverage breaks ties among clean
    runs, and a rare outcome signature (violation codes + outcome hash)
    outranks a common one.  Deterministic: ties resolve by run index.
    """
    frequency: Dict[Tuple, int] = {}
    for row in summary.runs:
        signature = (tuple(row.codes), row.outcome)
        frequency[signature] = frequency.get(signature, 0) + 1
    ranked = []
    for row in summary.runs:
        rarity = 1.0 / frequency[(tuple(row.codes), row.outcome)]
        score = (row.violations * VIOLATION_WEIGHT + row.new_coverage
                 + rarity)
        ranked.append(RankedScenario(row=row, rarity=rarity, score=score))
    ranked.sort(key=lambda r: (-r.score, r.row.index))
    return ranked if limit is None else ranked[:limit]


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------

def _status_line(summary: CampaignSummary) -> str:
    if summary.completed:
        status = "completed"
    elif summary.torn_tail_bytes:
        status = (f"INTERRUPTED (torn tail: {summary.torn_tail_bytes} "
                  f"bytes cut mid-append)")
    else:
        status = "INTERRUPTED (no campaign.end recorded)"
    return status


def _scorecard_lines(summary: CampaignSummary) -> List[str]:
    """The engine-shaped scorecard body, one line per headline number."""
    total = summary.total
    progress = (f"{summary.executed}/{total}" if total is not None
                else f"{summary.executed}")
    parts = [f"executed {progress} runs"]
    if any(row.data.get("coverage_total") is not None
           for row in summary.runs):
        parts.append(f"coverage {summary.coverage_total} keys")
        parts.append(f"corpus {summary.corpus_size}")
    parts.append(f"findings {len(summary.findings)}")
    if summary.duration_s > 0:
        parts.append(f"{summary.rate:.1f} runs/s")
    lines = ["  " + ", ".join(parts)]
    for row in summary.findings:
        target = f" [target={row.target}]" if row.target else ""
        lines.append(f"    {row.label}{target} -> {','.join(row.codes)} "
                     f"({row.violations} violations)")
    return lines


def _telemetry_table(summary: CampaignSummary) -> List[str]:
    """A per-run telemetry scorecard when run_end events carried one."""
    rows = [(row.label, row.telemetry) for row in summary.runs
            if row.telemetry is not None]
    if not rows:
        return []
    from repro.obs.telemetry import RunTelemetry, render_scorecard_rows
    return ["", render_scorecard_rows(
        [(label, RunTelemetry.from_dict(telemetry))
         for label, telemetry in rows])]


def render_text(summary: CampaignSummary, *, rank: int = 10) -> str:
    """The flight-record scorecard, faithful to the journal's last event."""
    header = f"campaign flight record: {summary.engine}"
    described = ", ".join(
        f"{key}={summary.start[key]}" for key in
        ("protocol", "target", "seed", "checkpoint_depth")
        if summary.start.get(key) is not None)
    if described:
        header += f" ({described})"
    lines = [header,
             f"  schema {summary.schema}, {_status_line(summary)}"]
    lines.extend(_scorecard_lines(summary))
    if summary.worker_errors:
        lines.append(f"  worker errors: {len(summary.worker_errors)}")
    if summary.checkpoints:
        labels = ", ".join(str(c.get("label", "?"))
                           for c in summary.checkpoints)
        lines.append(f"  checkpoints captured: {labels}")
    sharing = summary.prefix_sharing()
    if sharing is not None:
        lines.append(f"  prefix sharing: {sharing['captures']} captures, "
                     f"{sharing['forks']} forked runs, "
                     f"{sharing['fallbacks']} cold fallbacks")
        if sharing["groups"]:
            lines.append("  prefix group                     "
                         "capture hits / forks")
            for key in sorted(sharing["groups"]):
                group = sharing["groups"][key]
                extra = (f", {group['cached']} cached"
                         if group["cached"] else "")
                lines.append(
                    f"    {key:<28} {group['captures']:>12} / "
                    f"{group['forks']} over {group['runs']} runs{extra}")
    end = summary.end or {}
    if end.get("simulated_events") is not None:
        lines.append(
            f"  simulated {end['simulated_events']} events "
            f"({end.get('ancestor_forks', 0)} ancestor forks, "
            f"{end.get('nested_captures', 0)} nested checkpoints)")
    if summary.shrink_steps:
        lines.append(f"  shrink probes: {summary.shrink_steps}")
    if summary.phases:
        spans = ", ".join(
            f"{name} {((end - start) if end is not None else summary.duration_s - start) * 1000:.0f}ms"
            for name, start, end in summary.phases)
        lines.append(f"  phases: {spans}")
    ranked = [r for r in rank_scenarios(summary, limit=rank)
              if r.score > 0]
    if ranked:
        lines.append("  top scenarios by bug yield:")
        for place, scenario in enumerate(ranked, 1):
            row = scenario.row
            verdict = ",".join(row.codes) if row.codes else "conformant"
            lines.append(
                f"    {place:>2}. {row.label:<32} {verdict:<24} "
                f"score {scenario.score:6.1f} "
                f"(viol {row.violations}, +cov {row.new_coverage}, "
                f"rarity {scenario.rarity:.2f})")
    lines.extend(_telemetry_table(summary))
    return "\n".join(lines)


def render_stable(summary: CampaignSummary) -> str:
    """The wall-clock-free scorecard: every deterministic row identity.

    Renders only :meth:`RunRow.stable_key` material (rows sorted by
    config index) plus the violation-code histogram -- no timestamps,
    rates, phase spans or capture counts, all of which legitimately
    differ between a serial run and a distributed or resumed one.  Two
    sweeps of the same campaign agree on this text byte for byte
    however they executed, which is the fabric's acceptance oracle
    (``tests/fabric/``): serial == sockets == killed-and-resumed.
    """
    rows = sorted(summary.runs, key=lambda row: row.index)
    lines = [f"stable scorecard: {len(rows)} rows, "
             f"{sum(1 for row in rows if row.codes)} findings"]
    for row in rows:
        verdict = ",".join(row.codes) if row.codes else "conformant"
        target = f" target={row.target}" if row.target else ""
        outcome = f" outcome={row.outcome}" if row.outcome else ""
        lines.append(
            f"  [{row.index:>4}] {row.label:<36} {verdict:<24} "
            f"viol={row.violations} +cov={row.new_coverage} "
            f"corpus={int(row.corpus)} ok={int(row.ok)}"
            f"{target}{outcome}")
    histogram = summary.codes_histogram()
    for code in sorted(histogram):
        lines.append(f"  code {code}: {histogram[code]}")
    return "\n".join(lines)


def summary_to_json(summary: CampaignSummary, *, rank: int = 10
                    ) -> Dict[str, Any]:
    """Machine-readable summary (also the history store's row source)."""
    return {
        "schema": summary.schema if summary.schema is not None
        else SCHEMA_VERSION,
        "engine": summary.engine,
        "start": summary.start,
        "fingerprint": summary.fingerprint(),
        "completed": summary.completed,
        "torn_tail_bytes": summary.torn_tail_bytes,
        "duration_s": summary.duration_s,
        "executed": summary.executed,
        "total": summary.total,
        "findings": len(summary.findings),
        "coverage_total": summary.coverage_total,
        "corpus_size": summary.corpus_size,
        "rate_per_s": round(summary.rate, 3),
        "codes": summary.codes_histogram(),
        "worker_errors": summary.worker_errors,
        "checkpoints": summary.checkpoints,
        "prefix_sharing": summary.prefix_sharing(),
        "shrink_steps": summary.shrink_steps,
        "phases": [{"name": name, "start_s": start, "end_s": end}
                   for name, start, end in summary.phases],
        "runs": [
            {"index": row.index, "label": row.label, "target": row.target,
             "codes": row.codes, "violations": row.violations,
             "new_coverage": row.new_coverage, "corpus": row.corpus,
             "cached": row.cached, "ok": row.ok, "outcome": row.outcome,
             "telemetry": row.telemetry}
            for row in summary.runs],
        "ranking": [
            {"index": s.row.index, "label": s.row.label,
             "codes": s.row.codes, "violations": s.row.violations,
             "new_coverage": s.row.new_coverage,
             "rarity": round(s.rarity, 4), "score": round(s.score, 3)}
            for s in rank_scenarios(summary, limit=rank)],
    }


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #ddd; }
th { background: #f5f5f5; } tr:hover td { background: #fafafa; }
.bad { color: #b00020; font-weight: 600; }
.ok { color: #2e7d32; }
.muted { color: #777; }
.banner { padding: 0.5rem 0.8rem; border-radius: 4px; margin: 1rem 0; }
.banner.completed { background: #e8f5e9; }
.banner.interrupted { background: #fff3e0; }
"""


def render_html(summary: CampaignSummary, *, rank: int = 20) -> str:
    """A self-contained single-file HTML report (no external assets)."""
    esc = _html.escape
    title = f"campaign flight record: {summary.engine}"
    status = _status_line(summary)
    banner_class = "completed" if summary.completed else "interrupted"
    rows: List[str] = []
    for place, scenario in enumerate(rank_scenarios(summary, limit=rank), 1):
        row = scenario.row
        verdict = (f'<span class="bad">{esc(",".join(row.codes))}</span>'
                   if row.codes else '<span class="ok">conformant</span>')
        rows.append(
            f"<tr><td>{place}</td><td>{esc(row.label)}</td>"
            f"<td>{esc(row.target or '-')}</td><td>{verdict}</td>"
            f"<td>{row.violations}</td><td>{row.new_coverage}</td>"
            f"<td>{scenario.rarity:.2f}</td><td>{scenario.score:.1f}</td>"
            f"</tr>")
    codes = summary.codes_histogram()
    code_rows = "".join(
        f"<tr><td>{esc(code)}</td><td>{count}</td></tr>"
        for code, count in sorted(codes.items(),
                                  key=lambda kv: (-kv[1], kv[0])))
    phase_rows = "".join(
        f"<tr><td>{esc(name)}</td><td>{start:.3f}</td>"
        f"<td>{'-' if end is None else f'{end:.3f}'}</td></tr>"
        for name, start, end in summary.phases)
    start_rows = "".join(
        f"<tr><td>{esc(str(key))}</td><td>{esc(str(value))}</td></tr>"
        for key, value in sorted(summary.start.items()))
    sharing = summary.prefix_sharing()
    sharing_section = ""
    if sharing is not None:
        sharing_rows = "".join(
            f"<tr><td>{esc(key)}</td><td>{group['captures']}</td>"
            f"<td>{group['forks']}</td><td>{group['runs']}</td>"
            f"<td>{group['cached']}</td></tr>"
            for key, group in sorted(sharing["groups"].items()))
        sharing_section = f"""
<h2>Prefix sharing</h2>
<p class="muted">{sharing['captures']} captures &middot;
 {sharing['forks']} forked runs &middot;
 {sharing['fallbacks']} cold fallbacks</p>
<table><thead><tr><th>prefix group</th><th>capture hits</th>
<th>forks</th><th>runs</th><th>cached</th></tr></thead>
<tbody>{sharing_rows or
        '<tr><td colspan="5" class="muted">none</td></tr>'}</tbody></table>"""
    total = summary.total
    progress = (f"{summary.executed}/{total}" if total is not None
                else str(summary.executed))
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{esc(title)}</title><style>{_HTML_STYLE}</style></head><body>
<h1>{esc(title)}</h1>
<div class="banner {banner_class}">{esc(status)} &middot;
 schema {summary.schema} &middot; {progress} runs &middot;
 {len(summary.findings)} finding(s) &middot;
 coverage {summary.coverage_total} keys &middot;
 {summary.rate:.1f} runs/s</div>
<h2>Configuration</h2>
<table><tbody>{start_rows}</tbody></table>
<h2>Scenarios ranked by bug yield</h2>
<p class="muted">score = violations &times; {VIOLATION_WEIGHT:g}
 + coverage keys contributed + 1/outcome frequency</p>
<table><thead><tr><th>#</th><th>scenario</th><th>target</th>
<th>verdict</th><th>violations</th><th>+coverage</th><th>rarity</th>
<th>score</th></tr></thead><tbody>{"".join(rows)}</tbody></table>
<h2>Violations by code</h2>
<table><thead><tr><th>code</th><th>runs</th></tr></thead>
<tbody>{code_rows or '<tr><td colspan="2" class="ok">none</td></tr>'}</tbody>
</table>
{sharing_section}
<h2>Campaign phases</h2>
<table><thead><tr><th>phase</th><th>start&nbsp;s</th><th>end&nbsp;s</th>
</tr></thead><tbody>{phase_rows or
                     '<tr><td colspan="3" class="muted">none recorded</td></tr>'}</tbody></table>
<p class="muted">generated by repro.obs.campaign_report from
 {esc(str(summary.path or 'journal'))}</p>
</body></html>
"""
