"""Property-based tests of the strong group membership safety property.

"The strong group membership protocol ... ensures that membership changes
are seen in the same order by all members."  Groups are identified by
(leader, incarnation): each leader's incarnation counter is strictly
increasing, so two properties must hold under arbitrary omission faults,
partitions, and crashes:

- **agreement**: any two daemons adopting a view identified by the same
  (leader, group_id) adopted the same member set;
- **same order**: the views two daemons both adopted appear in the same
  relative order in each daemon's adoption sequence.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.gmp_common import build_gmp_cluster


def view_key(view):
    return (view.leader, view.group_id)


def agreement_holds(cluster) -> bool:
    """Views committed under one (leader, gid) agree across daemons."""
    by_key = {}
    for daemon in cluster.daemons.values():
        for view in daemon.views_adopted:
            members = by_key.setdefault(view_key(view), view.members)
            if members != view.members:
                return False
    return True


def same_order_holds(cluster) -> bool:
    """Shared views appear in the same relative order everywhere."""
    sequences = {a: [view_key(v) for v in d.views_adopted]
                 for a, d in cluster.daemons.items()}
    daemons = list(sequences)
    for i, a in enumerate(daemons):
        for b in daemons[i + 1:]:
            common = [k for k in sequences[a] if k in set(sequences[b])]
            common_b = [k for k in sequences[b] if k in set(sequences[a])]
            if common != common_b:
                return False
    return True


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.0, max_value=0.4))
@settings(max_examples=10, deadline=None)
def test_safety_under_random_send_omission(seed, loss):
    cluster = build_gmp_cluster([1, 2, 3], seed=seed % 1000)
    rng = random.Random(seed)
    for address in cluster.world:
        def lossy(ctx, _rng=rng, _p=loss):
            if _rng.random() < _p:
                ctx.drop()
        cluster.pfis[address].set_send_filter(lossy)
    cluster.start()
    cluster.run_until(60.0)
    assert agreement_holds(cluster)
    assert same_order_holds(cluster)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_safety_under_random_partitions(seed):
    rng = random.Random(seed)
    cluster = build_gmp_cluster([1, 2, 3, 4], seed=seed % 1000)
    cluster.start()
    cluster.run_until(10.0)
    for _ in range(3):
        members = [1, 2, 3, 4]
        rng.shuffle(members)
        cut = rng.randrange(1, 4)
        cluster.env.network.partition(members[:cut], members[cut:])
        cluster.run_until(cluster.scheduler.now + rng.uniform(5, 20))
        cluster.env.network.heal()
        cluster.run_until(cluster.scheduler.now + rng.uniform(5, 20))
    cluster.run_until(cluster.scheduler.now + 60.0)
    assert agreement_holds(cluster)
    assert same_order_holds(cluster)
    # after the final heal and generous settling, everyone converges
    assert cluster.all_in_one_group()


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=8, deadline=None)
def test_safety_with_crashed_members(seed, victim):
    cluster = build_gmp_cluster([1, 2, 3, 4], seed=seed % 1000)
    cluster.start()
    cluster.run_until(12.0)
    cluster.env.network.node(victim).halt()
    cluster.run_until(72.0)
    assert agreement_holds(cluster)
    assert same_order_holds(cluster)
    survivors = [a for a in (1, 2, 3, 4) if a != victim]
    expected = tuple(survivors)
    for address in survivors:
        assert cluster.daemons[address].view.members == expected
