"""GMP message wire format.

The paper's gmd exchanged real UDP datagrams; packet stubs were "written
by people who know the packet formats of the target protocol".  This
module gives :class:`~repro.gmp.messages.GmpMessage` that concrete form:
a fixed header (magic, kind, sender, originator, subject, group id, flags,
member count, checksum) followed by the member list, with a 16-bit
internet checksum so byte-level corruption is detectable.

Round-tripping through bytes is exercised by the byte-corruption fault
tests; the in-simulator stacks keep exchanging structured objects for
speed, exactly as they may -- the wire format is the contract either
representation satisfies.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.gmp.messages import ALL_KINDS, GmpMessage

MAGIC = 0x47AD  # "GM"-ish tag guarding against foreign datagrams

_KIND_CODES = {kind: i for i, kind in enumerate(ALL_KINDS)}
_CODE_KINDS = {i: kind for kind, i in _KIND_CODES.items()}

_HEADER_FMT = "!HBBiiiiBH"  # magic kindcode flags sender orig subject gid nmembers cksum
_HEADER_LEN = struct.calcsize(_HEADER_FMT)

_FLAG_DOWN = 0x01


class WireError(ValueError):
    """Raised for undecodable or corrupted datagrams."""


def encode(msg: GmpMessage) -> bytes:
    """Serialize a GMP message to its datagram form."""
    flags = _FLAG_DOWN if msg.down else 0
    header = struct.pack(
        _HEADER_FMT, MAGIC, _KIND_CODES[msg.kind], flags, msg.sender,
        msg.originator, msg.subject, msg.group_id, len(msg.members), 0)
    body = b"".join(struct.pack("!i", member) for member in msg.members)
    checksum = _checksum(header + body)
    header = header[:_HEADER_LEN - 2] + struct.pack("!H", checksum)
    return header + body


def decode(data: bytes, *, verify: bool = True) -> GmpMessage:
    """Parse a datagram back into a message, verifying the checksum."""
    if len(data) < _HEADER_LEN:
        raise WireError(f"datagram too short: {len(data)} bytes")
    (magic, kind_code, flags, sender, originator, subject, group_id,
     n_members, checksum) = struct.unpack(_HEADER_FMT, data[:_HEADER_LEN])
    if magic != MAGIC:
        raise WireError(f"bad magic 0x{magic:04x}")
    if kind_code not in _CODE_KINDS:
        raise WireError(f"unknown message kind code {kind_code}")
    body = data[_HEADER_LEN:]
    if len(body) != 4 * n_members:
        raise WireError(
            f"member list length mismatch: header says {n_members}, "
            f"body holds {len(body) // 4}")
    if verify:
        zeroed = data[:_HEADER_LEN - 2] + b"\x00\x00" + body
        if _checksum(zeroed) != checksum:
            raise WireError("checksum mismatch")
    members: Tuple[int, ...] = tuple(
        struct.unpack("!i", body[i:i + 4])[0]
        for i in range(0, len(body), 4))
    return GmpMessage(kind=_CODE_KINDS[kind_code], sender=sender,
                      originator=originator, subject=subject,
                      group_id=group_id, members=members,
                      down=bool(flags & _FLAG_DOWN))


def _checksum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
