#!/usr/bin/env python3
"""Audit four TCP implementations without their source code.

This is the paper's §4.1 programme as a single script: run every TCP
experiment against every vendor behaviour profile and print a conformance
report -- which implementation violates which part of the specification,
and which design decisions the probing reveals.

Run it::

    python examples/tcp_vendor_audit.py
"""

from repro.analysis.tables import render_table
from repro.experiments import (tcp_delayed_ack, tcp_keepalive,
                               tcp_reordering, tcp_retransmission,
                               tcp_zero_window)
from repro.tcp import SOLARIS_23, VENDORS


def audit_retransmission():
    print("\n[1/5] retransmission behaviour (Table 1)...")
    findings = []
    for name, result in tcp_retransmission.run_all().items():
        style = ("per-segment retry budget"
                 if result.retransmissions >= 12
                 else "global fault counter")
        close = "RST on death" if result.reset_sent else "silent close"
        findings.append([name, result.retransmissions, style, close])
    print(render_table("retransmissions until the connection dies",
                       ["Implementation", "Retransmits", "Counting style",
                        "Teardown"], findings))


def audit_rtt_adaptation():
    print("\n[2/5] RTT adaptation under 3 s ACK delays (Table 2)...")
    findings = []
    for name, result in tcp_delayed_ack.run_all(3.0).items():
        verdict = ("Jacobson/Karn compliant"
                   if result.adapted_above_delay
                   else "NON-COMPLIANT: did not adapt (RFC-1122 requires "
                        "Jacobson's algorithm)")
        findings.append([name,
                         f"{result.first_retransmit_interval:.1f} s",
                         verdict])
    print(render_table("first retransmission after drops began",
                       ["Implementation", "First retransmit", "Verdict"],
                       findings))

    probe = tcp_delayed_ack.run_global_counter_probe(SOLARIS_23)
    print(f"\n  design decision uncovered: Solaris keeps a per-connection "
          f"fault counter\n  (m1 consumed {probe.m1_retransmissions} of 9 "
          f"attempts; m2 got only {probe.m2_retransmissions})")


def audit_keepalive():
    print("\n[3/5] keep-alive (Table 3)...")
    findings = []
    for name, result in tcp_keepalive.run_all().items():
        threshold_ok = result.first_probe_at >= 7200.0
        verdict = ("ok" if threshold_ok
                   else f"SPEC VIOLATION: threshold "
                        f"{result.first_probe_at:.0f} s < 7200 s")
        fmt = "1 garbage byte" if result.garbage_byte else "no data"
        findings.append([name, f"{result.first_probe_at:.0f} s",
                         f"{result.probe_retransmissions} retries, "
                         f"{'RST' if result.reset_sent else 'no RST'}",
                         fmt, verdict])
    print(render_table("keep-alive probing",
                       ["Implementation", "First probe", "On no answer",
                        "Probe format", "Spec check"], findings))


def audit_zero_window():
    print("\n[4/5] zero-window probing (Table 4)...")
    findings = []
    for name, result in tcp_zero_window.run_all("unacked").items():
        findings.append([
            name, f"cap {result.plateau:.0f} s",
            "probes forever even unACKed" if result.still_probing_at_end
            else "gave up",
            "possible resource leak if the peer is gone"
            if result.still_probing_at_end else ""])
    print(render_table("zero-window persist behaviour (probes unanswered)",
                       ["Implementation", "Backoff cap", "Persistence",
                        "Concern"], findings))


def audit_reordering():
    print("\n[5/5] out-of-order handling (Experiment 5)...")
    findings = []
    for name, result in tcp_reordering.run_all().items():
        findings.append([
            name,
            "queues (RFC-1122 SHOULD)" if result.second_segment_queued
            else "drops (throughput hazard)",
            "cumulative ACK for both" if result.acked_both_at_once
            else "per-segment ACKs"])
    print(render_table("reordered segment treatment",
                       ["Implementation", "Policy", "Acknowledgement"],
                       findings))


def main():
    names = ", ".join(VENDORS)
    print(f"auditing TCP implementations: {names}")
    print("(no vendor source code required: all behaviour observed "
          "through the PFI layer)")
    audit_retransmission()
    audit_rtt_adaptation()
    audit_keepalive()
    audit_zero_window()
    audit_reordering()
    print("\naudit complete.")


if __name__ == "__main__":
    main()
