"""Unit tests for the virtual-time event scheduler."""

import pytest

from repro.netsim.scheduler import Scheduler, SchedulerError


def test_starts_at_zero():
    assert Scheduler().now == 0.0


def test_starts_at_custom_time():
    assert Scheduler(start_time=5.0).now == 5.0


def test_schedule_and_run_advances_clock():
    sched = Scheduler()
    fired = []
    sched.schedule(1.5, fired.append, "a")
    sched.run()
    assert fired == ["a"]
    assert sched.now == 1.5


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "late")
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(2.0, fired.append, "middle")
    sched.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_fifo():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.schedule(1.0, fired.append, i)
    sched.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    with pytest.raises(SchedulerError):
        Scheduler().schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    event.cancel()
    sched.run()
    assert fired == []


def test_cancel_is_idempotent():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sched.run() == 0


def test_run_until_stops_at_deadline():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "in")
    sched.schedule(10.0, fired.append, "out")
    sched.run_until(5.0)
    assert fired == ["in"]
    assert sched.now == 5.0


def test_run_until_includes_deadline_events():
    sched = Scheduler()
    fired = []
    sched.schedule(5.0, fired.append, "edge")
    sched.run_until(5.0)
    assert fired == ["edge"]


def test_run_until_backwards_rejected():
    sched = Scheduler()
    sched.run_until(10.0)
    with pytest.raises(SchedulerError):
        sched.run_until(5.0)


def test_run_for_advances_relative():
    sched = Scheduler()
    sched.run_until(10.0)
    sched.run_for(5.0)
    assert sched.now == 15.0


def test_events_scheduled_during_run_fire():
    sched = Scheduler()
    fired = []

    def chain():
        fired.append("first")
        sched.schedule(1.0, fired.append, "second")

    sched.schedule(1.0, chain)
    sched.run()
    assert fired == ["first", "second"]
    assert sched.now == 2.0


def test_run_guards_against_cascade():
    sched = Scheduler()

    def rearm():
        sched.schedule(0.0, rearm)

    sched.schedule(0.0, rearm)
    with pytest.raises(SchedulerError):
        sched.run(max_events=100)


def test_pending_count_ignores_cancelled():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    event = sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.pending_count == 1


def test_peek_time_skips_cancelled():
    sched = Scheduler()
    first = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    first.cancel()
    assert sched.peek_time() == 2.0


def test_peek_time_empty():
    assert Scheduler().peek_time() is None


def test_step_returns_false_when_empty():
    assert Scheduler().step() is False


def test_dispatched_count():
    sched = Scheduler()
    for i in range(5):
        sched.schedule(i, lambda: None)
    sched.run()
    assert sched.dispatched_count == 5


def test_callback_args_passed_through():
    sched = Scheduler()
    seen = []
    sched.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "two")
    sched.run()
    assert seen == [(1, "two")]


def test_clock_left_at_deadline_even_if_drained():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    sched.run_until(100.0)
    assert sched.now == 100.0


def test_pending_count_tracks_schedule_and_dispatch():
    sched = Scheduler()
    events = [sched.schedule(float(i), lambda: None) for i in range(4)]
    assert sched.pending_count == 4
    sched.step()
    assert sched.pending_count == 3
    events[1].cancel()
    assert sched.pending_count == 2
    sched.run()
    assert sched.pending_count == 0


def test_pending_count_double_cancel_counts_once():
    sched = Scheduler()
    keep = sched.schedule(1.0, lambda: None)
    victim = sched.schedule(2.0, lambda: None)
    victim.cancel()
    victim.cancel()
    victim.cancel()
    assert sched.pending_count == 1
    keep.cancel()
    assert sched.pending_count == 0


def test_pending_count_live_during_dispatch():
    sched = Scheduler()
    observed = []

    def chain(n):
        observed.append(sched.pending_count)
        if n:
            sched.schedule(1.0, chain, n - 1)

    sched.schedule(0.0, chain, 2)
    sched.run()
    # inside each callback the fired event is already popped
    assert observed == [0, 0, 0]
    assert sched.pending_count == 0


def test_pending_count_cancelled_events_drain_cleanly():
    sched = Scheduler()
    cancelled = [sched.schedule(1.0, lambda: None) for _ in range(3)]
    sched.schedule(2.0, lambda: None)
    for event in cancelled:
        event.cancel()
    assert sched.pending_count == 1
    sched.run()
    assert sched.pending_count == 0
    assert sched.dispatched_count == 1


def test_cancel_after_fire_is_harmless():
    # the paper's timer code keeps stale handles around; cancelling an
    # already-fired event must neither raise nor corrupt pending_count
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, lambda: fired.append(True))
    sched.run()
    assert fired == [True]
    event.cancel()
    event.cancel()
    assert sched.pending_count == 0
    assert sched.dispatched_count == 1


def test_cancel_then_reschedule_same_instant():
    # cancel one event at t and immediately schedule a replacement at the
    # exact same instant: the replacement fires, the victim does not, and
    # pending_count stays exact throughout
    sched = Scheduler()
    fired = []
    victim = sched.schedule(5.0, lambda: fired.append("victim"))
    assert sched.pending_count == 1
    victim.cancel()
    assert sched.pending_count == 0
    replacement = sched.schedule(5.0, lambda: fired.append("replacement"))
    assert sched.pending_count == 1
    victim.cancel()  # double-cancel after replacement exists
    assert sched.pending_count == 1
    sched.run()
    assert fired == ["replacement"]
    assert sched.pending_count == 0
    assert not replacement.cancelled


def test_run_until_quiet_leaves_clock_at_last_event():
    sched = Scheduler()
    times = []
    for t in (1.0, 2.5, 4.0):
        sched.schedule_at(t, lambda t=t: times.append(t))
    fired = sched.run_until_quiet()
    assert fired == 3
    assert times == [1.0, 2.5, 4.0]
    assert sched.now == 4.0  # not advanced past the last event


def test_run_until_quiet_respects_max_time():
    sched = Scheduler()
    fired = []
    sched.schedule_at(1.0, lambda: fired.append(1))
    sched.schedule_at(10.0, lambda: fired.append(10))
    sched.run_until_quiet(max_time=5.0)
    assert fired == [1]
    assert sched.pending_count == 1  # the t=10 event survives


# ----------------------------------------------------------------------
# lazy-cancel tombstone compaction
# ----------------------------------------------------------------------

def test_compact_removes_tombstones():
    sched = Scheduler()
    live = [sched.schedule(float(i), lambda: None) for i in range(10)]
    for event in live[::2]:
        event.cancel()
    removed = sched.compact()
    assert removed == 5
    assert sched.compactions == 1
    assert sched.pending_count == 5
    # dispatch order of the survivors is unchanged
    assert [e.time for e in sched.pending_events()] == [1.0, 3.0, 5.0, 7.0, 9.0]


def test_compact_noop_without_tombstones():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    assert sched.compact() == 0
    assert sched.compactions == 0


def test_cancel_storm_auto_compacts():
    from repro.netsim.scheduler import COMPACT_THRESHOLD
    sched = Scheduler()
    events = [sched.schedule(float(i), lambda: None)
              for i in range(COMPACT_THRESHOLD + 2)]
    for event in events:
        event.cancel()
    # the storm crossed the threshold while tombstones outnumbered the
    # few live entries, so the heap compacted itself mid-storm
    assert sched.compactions >= 1
    assert sched.pending_count == 0


def test_auto_compact_waits_for_majority_dead():
    from repro.netsim.scheduler import COMPACT_THRESHOLD
    sched = Scheduler()
    keep = COMPACT_THRESHOLD * 3
    for i in range(keep):
        sched.schedule(float(i), lambda: None)
    doomed = [sched.schedule(float(keep + i), lambda: None)
              for i in range(COMPACT_THRESHOLD + 1)]
    for event in doomed:
        event.cancel()
    # tombstones exceed the threshold but live entries still dominate:
    # no compaction, the dead entries pop lazily instead
    assert sched.compactions == 0
    sched.run()
    assert sched.dispatched_count == keep


def test_compactions_metric_exported():
    from repro.obs.metrics import MetricsRegistry
    sched = Scheduler()
    cancelled = sched.schedule(1.0, lambda: None)
    cancelled.cancel()
    sched.compact()
    registry = MetricsRegistry()
    sched.fill_metrics(registry)
    assert registry.gauge("scheduler_compactions").value == 1
    assert registry.gauge("scheduler_tombstones").value == 0


def test_peek_entry_skips_cancelled_and_preserves_order():
    sched = Scheduler()
    first = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    first.cancel()
    entry = sched.peek_entry()
    assert entry.time == 2.0
    assert sched.peek_entry() is entry  # peeking does not consume
    assert Scheduler().peek_entry() is None


def test_step_dispatches_exactly_one_event():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(2.0, lambda: fired.append(2))
    assert sched.step() is True
    assert fired == [1]
    assert sched.now == 1.0
