"""The script execution context.

Each time a message passes through the PFI layer, the appropriate filter
script runs with a :class:`ScriptContext` bound to the current message
(the paper's ``cur_msg`` handle).  The context exposes the three operation
classes of the paper -- *message filtering* (inspection), *message
manipulation* (drop/delay/reorder/duplicate/modify), and *message
injection* (spontaneous probe messages) -- plus persistent per-filter
state, access to the peer filter's state ("cross-interpreter
communication"), the virtual clock, probability distributions, and the
cross-node synchronization object.

A context is single-use: the PFI layer builds one per intercepted message,
runs the filter, then applies the recorded actions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.distributions import DistributionSet
from repro.core.stubs import PacketStubs
from repro.core.sync import ScriptSync
from repro.xkernel.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pfi import PFILayer

PASS = "pass"
DROP = "drop"
HOLD = "hold"


class ScriptContext:
    """Everything a filter script can see and do for one message."""

    def __init__(self, *, msg: Message, direction: str, now: float,
                 state: Dict[str, Any], peer_state: Dict[str, Any],
                 stubs: PacketStubs, dist: DistributionSet,
                 sync: ScriptSync, node: str, pfi: "PFILayer"):
        if direction not in ("send", "receive"):
            raise ValueError(f"direction must be send/receive, got {direction}")
        self.msg = msg
        self.direction = direction
        self.now = now
        self.state = state
        self.peer_state = peer_state
        self.stubs = stubs
        self.dist = dist
        self.sync = sync
        self.node = node
        self._pfi = pfi
        # recorded actions, applied by the PFI layer after the script runs
        self.verdict: str = PASS
        self.delay_s: float = 0.0
        self.duplicate_delays: List[float] = []
        self.hold_tag: str = "default"
        self.injections: List[Tuple[Message, str, float]] = []
        self.releases: List[Tuple[str, float]] = []
        self.modified: bool = False

    # ------------------------------------------------------------------
    # filtering (inspection)
    # ------------------------------------------------------------------

    def msg_type(self) -> str:
        """Type name of the current message, via the recognition stubs."""
        return self.stubs.msg_type(self.msg)

    def field(self, name: str) -> Any:
        """Read a header field of the current message."""
        return self.stubs.get_field(self.msg, name)

    def has_field(self, name: str) -> bool:
        """True if the current message has the named header field."""
        try:
            self.stubs.get_field(self.msg, name)
            return True
        except Exception:
            return False

    def log(self, note: str = "") -> None:
        """``msg_log``: record the current message with a timestamp."""
        self._pfi.log_message(self.msg, direction=self.direction, note=note)

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------

    def drop(self) -> None:
        """``xDrop``: discard the current message."""
        self.verdict = DROP

    def delay(self, seconds: float) -> None:
        """Forward the current message ``seconds`` later than now."""
        if seconds < 0:
            raise ValueError("delay must be non-negative")
        self.delay_s = seconds

    def duplicate(self, copies: int = 1, spacing: float = 0.0) -> None:
        """Forward ``copies`` extra copies, each ``spacing`` apart."""
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.duplicate_delays.extend(
            spacing * (i + 1) for i in range(copies))

    def set_field(self, name: str, value: Any) -> None:
        """Modify a header field of the current message in place."""
        self.stubs.set_field(self.msg, name, value)
        self.modified = True

    def hold(self, tag: str = "default") -> None:
        """Park the current message in a named hold queue (for reordering).

        Held messages are not forwarded until :meth:`release` is called --
        by this invocation or a later one.  Selective reordering in the
        paper ("the send filter ... was configured to send two outgoing
        segments out of order") is hold-then-release.
        """
        self.verdict = HOLD
        self.hold_tag = tag

    def release(self, tag: str = "default", delay: float = 0.0) -> None:
        """Re-emit all messages held under ``tag``, after ``delay``."""
        self.releases.append((tag, delay))

    def held_count(self, tag: str = "default") -> int:
        """Number of messages currently parked under ``tag``."""
        return self._pfi.held_count(self.direction, tag)

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------

    def inject(self, what, direction: Optional[str] = None,
               delay: float = 0.0, **fields: Any) -> Message:
        """Introduce a spontaneous message.

        ``what`` is either a ready :class:`Message` or a generator stub
        type name (fields passed through to the generator).  ``direction``
        defaults to the direction of the current filter: a send filter
        injects toward the wire, a receive filter toward the target layer.
        """
        if isinstance(what, Message):
            msg = what
            msg.meta.setdefault("injected", True)
        else:
            msg = self.stubs.generate(what, **fields)
        self.injections.append((msg, direction or self.direction, delay))
        return msg

    # ------------------------------------------------------------------
    # cross-interpreter / cross-node communication
    # ------------------------------------------------------------------

    def set_peer(self, key: str, value: Any) -> None:
        """Set a variable in the *other* filter's persistent state.

        "The send filter might set a variable in the receive interpreter
        which tells the receive filter to start dropping messages."
        """
        self.peer_state[key] = value

    def get_peer(self, key: str, default: Any = None) -> Any:
        """Read a variable from the other filter's persistent state."""
        return self.peer_state.get(key, default)

    def __repr__(self) -> str:
        return (f"ScriptContext({self.node}/{self.direction}, "
                f"type={self.msg_type()}, verdict={self.verdict})")
