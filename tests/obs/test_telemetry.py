"""Campaign telemetry and the scorecard."""

from repro.core.orchestrator import Campaign, RunResult
from repro.netsim.trace import TraceRecorder
from repro.obs.telemetry import RunTelemetry, render_scorecard

from tests.core.test_campaign_parallel import _sweep_configs, sweep_body


class TestRunTelemetry:
    def test_campaign_attaches_telemetry_by_default(self):
        results = Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=2, events=50))
        for result in results:
            telemetry = result.telemetry
            assert telemetry is not None
            assert telemetry.wall_s > 0
            assert telemetry.events >= 50
            assert telemetry.virtual_s > 0
            assert telemetry.trace_entries >= 1

    def test_telemetry_false_restores_bare_results(self):
        results = Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=2, events=10), telemetry=False)
        assert all(r.telemetry is None for r in results)

    def test_parallel_workers_ship_telemetry_back(self):
        results = Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=3, events=50), workers=2)
        assert all(r.telemetry is not None for r in results)

    def test_telemetry_does_not_perturb_results(self):
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs(count=3, events=50)
        bare = campaign.run(configs, telemetry=False)
        timed = campaign.run(configs)
        assert [r.result for r in bare] == [r.result for r in timed]
        assert ([list(r.trace) for r in bare]
                == [list(r.trace) for r in timed])

    def test_derived_rates(self):
        telemetry = RunTelemetry(wall_s=2.0, events=100, virtual_s=500.0,
                                 trace_entries=7)
        assert telemetry.events_per_s == 50.0
        assert telemetry.virtual_per_wall == 250.0
        assert telemetry.as_dict()["events_per_s"] == 50.0

    def test_zero_wall_does_not_divide(self):
        telemetry = RunTelemetry(wall_s=0.0, events=5, virtual_s=1.0,
                                 trace_entries=0)
        assert telemetry.events_per_s == 0.0
        assert telemetry.virtual_per_wall == 0.0

    def test_negative_wall_guards_like_zero(self):
        # a clock that steps backwards (ntp, frozen perf counters on
        # some VMs) must degrade to 0.0, never a negative rate
        telemetry = RunTelemetry(wall_s=-0.5, events=5, virtual_s=1.0,
                                 trace_entries=0)
        assert telemetry.events_per_s == 0.0
        assert telemetry.virtual_per_wall == 0.0

    def test_as_dict_at_zero_duration_is_serializable(self):
        import json
        payload = RunTelemetry(wall_s=0.0, events=0, virtual_s=0.0,
                               trace_entries=0).as_dict()
        assert payload["events_per_s"] == 0.0
        json.dumps(payload)

    def test_from_dict_roundtrip(self):
        telemetry = RunTelemetry(wall_s=2.0, events=100, virtual_s=500.0,
                                 trace_entries=7)
        clone = RunTelemetry.from_dict(telemetry.as_dict())
        assert clone == telemetry
        assert clone.events_per_s == telemetry.events_per_s

    def test_from_dict_zero_duration_roundtrip(self):
        telemetry = RunTelemetry(wall_s=0.0, events=5, virtual_s=1.0,
                                 trace_entries=0)
        clone = RunTelemetry.from_dict(telemetry.as_dict())
        assert clone.events_per_s == 0.0
        assert clone.virtual_per_wall == 0.0


class TestScorecard:
    def test_one_row_per_config_plus_totals(self):
        results = Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=3, events=20))
        card = render_scorecard(results)
        for config in _sweep_configs(count=3, events=20):
            assert config["profile"] in card
        assert "3 config(s)" in card

    def test_results_without_telemetry_show_dashes(self):
        result = RunResult(config={"profile": "x"}, result=None,
                           trace=TraceRecorder())
        card = render_scorecard([result])
        assert "-" in card.splitlines()[2]
        assert "0 config(s)" in card

    def test_scorecard_flag_prints(self, capsys):
        Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=2, events=10), scorecard=True)
        out = capsys.readouterr().out
        assert "virt/wall" in out
        assert "2 config(s)" in out


class TestWorkerErrorNaming:
    def test_failed_config_is_named_in_notes(self):
        import pytest

        from tests.core.test_campaign_parallel import failing_body
        campaign = Campaign(failing_body, seed=7)
        with pytest.raises(RuntimeError, match="boom in vendor0") as info:
            campaign.run(_sweep_configs(count=2, events=1), workers=2)
        notes = getattr(info.value, "__notes__", [])
        assert any("campaign config [0]" in note for note in notes)
        assert any("vendor0" in note for note in notes)
