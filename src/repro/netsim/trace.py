"""Timestamped experiment traces.

Every experiment in the repository produces its results by querying a trace:
the retransmission-interval tables come from filtering retransmit events,
the GMP tables from membership-change events, and so on.  A trace entry is a
(virtual time, kind, attributes) triple; kinds use dotted names
("tcp.retransmit", "gmp.commit", "pfi.drop") so queries can match by prefix.

Capture-path layout: entries are ``__slots__`` objects (no per-entry
``__dict__``) and kind strings are interned, so a million-entry trace costs
one small object plus one attrs dict per entry and every ``entry.kind ==
kind`` comparison short-circuits on pointer identity.  Queries go through a
lazily built per-kind index that is advanced incrementally as new entries
arrive, turning exact-kind and kind-prefix scans from O(n) per query into
O(matches) after the first.
"""

from __future__ import annotations

import sys
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

_intern = sys.intern


class TraceEntry:
    """One recorded event."""

    __slots__ = ("time", "kind", "attrs")

    def __init__(self, time: float, kind: str, attrs: Dict[str, Any]):
        self.time = time
        self.kind = kind
        self.attrs = attrs

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEntry):
            return NotImplemented
        return (self.time == other.time and self.kind == other.kind
                and self.attrs == other.attrs)

    # attrs is a dict, so entries are unhashable -- same as the frozen
    # dataclass this class replaced, where hash() raised on the dict field
    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        # compact pickle form: campaign workers ship whole traces back to
        # the parent process, so per-entry pickle size is an IPC hot path
        return (TraceEntry, (self.time, self.kind, self.attrs))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"[{self.time:10.3f}] {self.kind}({attrs})"


class TraceRecorder:
    """Append-only store of :class:`TraceEntry` objects.

    The recorder is deliberately permissive about attribute payloads; shape
    checking belongs to the analysis layer, not the capture path.  The
    capture path never touches the query index: :meth:`record` is a bare
    construct-and-append, and the index catches up lazily on the next
    indexed query.
    """

    __slots__ = ("_entries", "_clock", "_kind_index", "_kind_upto",
                 "_prefix_cache")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._entries: List[TraceEntry] = []
        self._clock = clock
        self._kind_index: Dict[str, List[TraceEntry]] = {}
        self._kind_upto = 0
        self._prefix_cache: Dict[str, Tuple[int, List[TraceEntry]]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source used when ``record`` is called without t."""
        self._clock = clock

    def __getstate__(self) -> dict:
        # the bound clock usually closes over a live scheduler and is not
        # picklable, and the query indexes are pure caches; recorded
        # entries are what travels between campaign worker processes --
        # rebind a clock after unpickling if needed
        return {"entries": self._entries}

    def __setstate__(self, state: dict) -> None:
        self._entries = state["entries"]
        self._clock = None
        self._kind_index = {}
        self._kind_upto = 0
        self._prefix_cache = {}

    def record(self, kind: str, *, t: Optional[float] = None, **attrs: Any) -> TraceEntry:
        """Append an entry.  Time defaults to the bound clock."""
        if t is None:
            clock = self._clock
            if clock is None:
                raise RuntimeError("TraceRecorder has no clock bound; pass t=")
            t = clock()
        entry = TraceEntry(t, _intern(kind), attrs)
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------

    def _kind_lists(self) -> Dict[str, List[TraceEntry]]:
        """The per-kind index, advanced to cover every entry recorded so
        far.  Amortized O(1) per recorded entry across all queries."""
        entries = self._entries
        upto = self._kind_upto
        if upto < len(entries):
            index = self._kind_index
            for entry in entries[upto:]:
                bucket = index.get(entry.kind)
                if bucket is None:
                    index[entry.kind] = [entry]
                else:
                    bucket.append(entry)
            self._kind_upto = len(entries)
        return self._kind_index

    def _prefix_list(self, prefix: str) -> List[TraceEntry]:
        """Capture-ordered entries whose kind starts with ``prefix``,
        memoized per prefix and extended incrementally."""
        entries = self._entries
        cached = self._prefix_cache.get(prefix)
        if cached is None:
            upto, matches = 0, []
        else:
            upto, matches = cached
        if upto < len(entries):
            for entry in entries[upto:]:
                if entry.kind.startswith(prefix):
                    matches.append(entry)
            self._prefix_cache[prefix] = (len(entries), matches)
        elif cached is None:
            self._prefix_cache[prefix] = (0, matches)
        return matches

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def entries(self, kind: Optional[str] = None, **attr_filter: Any) -> List[TraceEntry]:
        """Entries matching an exact kind and attribute equality filters."""
        if kind is None:
            candidates: List[TraceEntry] = self._entries
        else:
            candidates = self._kind_lists().get(kind, [])
        if not attr_filter:
            return list(candidates)
        return [entry for entry in candidates
                if all(entry.attrs.get(k) == v
                       for k, v in attr_filter.items())]

    def entries_with_prefix(self, prefix: str, **attr_filter: Any) -> List[TraceEntry]:
        """Entries whose kind starts with ``prefix`` ("tcp." etc.)."""
        candidates = self._prefix_list(prefix)
        if not attr_filter:
            return list(candidates)
        return [entry for entry in candidates
                if all(entry.attrs.get(k) == v
                       for k, v in attr_filter.items())]

    def iter_subscribed(self, kinds: Iterable[str] = (),
                        prefixes: Iterable[str] = ()) -> Iterator[TraceEntry]:
        """Capture-ordered entries whose kind is in ``kinds`` or starts
        with one of ``prefixes``.

        This is the oracle layer's subscription primitive: an invariant
        declares the kinds it cares about and the engine walks every
        subscribed entry exactly once.  Prefix subscriptions are resolved
        to the concrete kinds recorded so far through the per-kind index,
        so the common cases stay cheap: an unrecorded subscription costs
        nothing, a single-kind subscription iterates its index bucket
        directly (O(matches)), and a multi-kind subscription does one
        interned-set membership test per entry.
        """
        index = self._kind_lists()
        resolved = {kind for kind in (_intern(k) for k in kinds)
                    if kind in index}
        for prefix in prefixes:
            resolved.update(kind for kind in index
                            if kind.startswith(prefix))
        if not resolved:
            return
        if len(resolved) == 1:
            yield from index[next(iter(resolved))]
            return
        for entry in self._entries:
            if entry.kind in resolved:
                yield entry

    def times(self, kind: str, **attr_filter: Any) -> List[float]:
        """Timestamps of matching entries, in capture order."""
        return [entry.time for entry in self.entries(kind, **attr_filter)]

    def intervals(self, kind: str, **attr_filter: Any) -> List[float]:
        """Successive differences between matching entries' timestamps.

        This is how retransmission-interval series (Figure 4) are derived
        from raw retransmit events.
        """
        times = self.times(kind, **attr_filter)
        return [b - a for a, b in zip(times, times[1:])]

    def count(self, kind: str, **attr_filter: Any) -> int:
        """Number of matching entries."""
        if not attr_filter:
            return len(self._kind_lists().get(kind, ()))
        return len(self.entries(kind, **attr_filter))

    def first(self, kind: str, **attr_filter: Any) -> Optional[TraceEntry]:
        """Earliest matching entry, or None."""
        matches = self.entries(kind, **attr_filter)
        return matches[0] if matches else None

    def last(self, kind: str, **attr_filter: Any) -> Optional[TraceEntry]:
        """Latest matching entry, or None."""
        matches = self.entries(kind, **attr_filter)
        return matches[-1] if matches else None

    def count_by_kind(self, prefix: str = "") -> Dict[str, int]:
        """``{kind: count}`` over the captured entries.

        The cheap aggregate behind ``repro report`` summaries and
        :func:`repro.obs.report.trace_metrics`.  Kinds appear in
        first-capture order, as they always have.
        """
        return {kind: len(bucket)
                for kind, bucket in self._kind_lists().items()
                if not prefix or kind.startswith(prefix)}

    def span(self) -> Optional[tuple]:
        """``(first_time, last_time)`` over all entries, or None if empty.

        Entries arrive clock-ordered from a live run, but loaded or
        merged traces may not be sorted, so both ends are scanned.
        """
        if not self._entries:
            return None
        times = [e.time for e in self._entries]
        return (min(times), max(times))

    def fill_metrics(self, registry, **labels: Any) -> None:
        """Absorb this trace's aggregates into a metrics registry.

        Writes one ``trace_entries`` gauge per kind (plus the total), so
        a campaign worker's capture volume shows up next to the
        scheduler/interp series in one snapshot.
        """
        registry.gauge("trace_entries_total", **labels).set(
            len(self._entries))
        for kind, count in self.count_by_kind().items():
            registry.gauge("trace_entries", kind=kind, **labels).set(count)

    @property
    def position(self) -> int:
        """The current append position (== number of entries so far).

        Checkpoints store this to know where a captured prefix ends;
        :meth:`truncate` restores it.
        """
        return len(self._entries)

    def truncate(self, position: int) -> int:
        """Drop every entry recorded after ``position``; returns #dropped.

        The restore half of the checkpoint protocol's trace handling:
        rewinding to a snapshot means the entries its continuation
        recorded must go.  The lazy query indexes are rebuilt from
        scratch on the next query (they only ever grow forward).
        """
        if position < 0 or position > len(self._entries):
            raise ValueError(
                f"truncate position {position} outside [0, "
                f"{len(self._entries)}]")
        dropped = len(self._entries) - position
        if dropped:
            del self._entries[position:]
            self._kind_index.clear()
            self._kind_upto = 0
            self._prefix_cache.clear()
        return dropped

    def fork(self, position: Optional[int] = None) -> "TraceRecorder":
        """A new recorder continuing from this one's first ``position``
        entries.

        Entry *objects* are shared -- entries are write-once on the
        capture path, so a forked continuation appending its own entries
        never disturbs the parent (and vice versa), while the checkpoint
        layer avoids deep-copying a potentially long prefix on every
        fork.  The fork has no clock bound; bind one before recording.
        """
        if position is None:
            position = len(self._entries)
        clone = TraceRecorder()
        clone._entries = self._entries[:position]
        return clone

    def clear(self) -> None:
        """Drop all captured entries (and the indexes built over them)."""
        self._entries.clear()
        self._kind_index.clear()
        self._kind_upto = 0
        self._prefix_cache.clear()

    def dump(self, kind_prefix: str = "") -> str:
        """Human-readable rendering, optionally restricted by kind prefix."""
        lines = [repr(e) for e in self._entries if e.kind.startswith(kind_prefix)]
        return "\n".join(lines)
