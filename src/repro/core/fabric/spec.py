"""The sweep specification a fabric run is addressed by.

A :class:`SweepSpec` bundles everything a worker process needs to execute
any slice of a campaign -- the body callable, the campaign seed, the full
configuration list, and the telemetry/oracle/grouping options -- pickled
once into the campaign directory (``spec.pkl``) so coordinator restarts
and late-joining workers all read the identical sweep.  The same
picklability rule as parallel :meth:`Campaign.run
<repro.core.orchestrator.Campaign.run>` applies: body and oracle must be
module-level callables.

The spec also owns key derivation: :meth:`store_keys` reproduces the
exact :meth:`RunCache.key <repro.core.orchestrator.RunCache.key>` the
in-process campaign engine computes (including the static prefix digest
for split bodies), which is what makes the fabric's
:class:`~repro.core.fabric.store.ResultStore` interoperable with local
``cache=`` sweeps -- a serial run that warmed a store resumes a fabric
run incrementally, and vice versa.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.orchestrator import (PrefixedBody, RunCache, _hash_code,
                                     _prefix_digest)


class SpecError(ValueError):
    """A spec that cannot serve a fabric run (unpicklable, mismatched)."""


@dataclass
class SweepSpec:
    """One campaign sweep, self-contained and picklable."""

    body: Callable
    seed: int
    configs: List[Dict[str, Any]]
    telemetry: bool = True
    oracle: Optional[Callable] = None
    lint: str = "error"
    group: bool = True
    #: free-form labels carried into journals (protocol, target, ...)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.configs = [dict(config) for config in self.configs]

    # ------------------------------------------------------------------
    # derivations
    # ------------------------------------------------------------------

    @property
    def split(self) -> bool:
        return isinstance(self.body, PrefixedBody)

    def prefix_keys(self) -> List[Optional[Any]]:
        """Per-config prefix keys (all ``None`` for unsplit bodies).

        Derived regardless of :attr:`group` -- store keys mix the prefix
        digest in whenever the body is split, exactly as the in-process
        cache pre-pass does, so grouped and ungrouped runs share one
        store address space.
        """
        if not self.split:
            return [None] * len(self.configs)
        return [self.body.prefix_key(config) for config in self.configs]

    def execution_prefix_keys(self) -> Optional[List[Optional[Any]]]:
        """Prefix keys for grouped execution, or ``None`` to run cold."""
        if not self.split or not self.group:
            return None
        keys = self.prefix_keys()
        return keys if any(key is not None for key in keys) else None

    def store_keys(self, store: RunCache) -> List[str]:
        """The content address of every configuration's result."""
        prefix_keys = self.prefix_keys()
        keys = []
        for index, config in enumerate(self.configs):
            keys.append(store.key(
                self.body, self.seed, config,
                telemetry=self.telemetry, oracle=self.oracle,
                checkpoint=(_prefix_digest(self.body, prefix_keys[index])
                            if self.split and prefix_keys[index] is not None
                            else None)))
        return keys

    def body_label(self) -> str:
        return getattr(self.body, "__qualname__", repr(self.body))

    def digest(self) -> str:
        """Content identity of this spec (collision => same sweep).

        Hashes canonical components -- body/oracle code the way
        :meth:`RunCache.key <repro.core.orchestrator.RunCache.key>`
        does, plus seed, options and config contents -- rather than the
        spec's pickle bytes, whose memoization layout depends on string
        object identity and therefore differs between a freshly built
        spec and the same spec loaded back from disk.
        """
        digest = hashlib.sha256()
        parts = getattr(self.body, "cache_parts", None)
        for fn in ((*parts(), self.body.key) if callable(parts)
                   else (self.body,)):
            digest.update(getattr(fn, "__module__", "").encode())
            digest.update(getattr(fn, "__qualname__", repr(fn)).encode())
            code = getattr(fn, "__code__", None)
            if code is not None:
                _hash_code(digest, code)
        if self.oracle is not None:
            digest.update(getattr(self.oracle, "__module__", "").encode())
            digest.update(getattr(self.oracle, "__qualname__",
                                  repr(self.oracle)).encode())
        digest.update(repr((self.seed, self.telemetry, self.lint,
                            self.group)).encode())
        digest.update(repr(sorted(self.meta.items())).encode())
        for config in self.configs:
            digest.update(repr(sorted(config.items())).encode())
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _dumps(self) -> bytes:
        try:
            return pickle.dumps(self)
        except Exception as err:
            raise SpecError(
                f"sweep spec is not picklable (body and oracle must be "
                f"module-level): {err}") from err

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the spec; safe against a concurrent reader."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = self._dumps()
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as err:
            raise SpecError(
                f"no sweep spec at {path} (nothing to resume): {err}"
                ) from err
        try:
            spec = pickle.loads(blob)
        except Exception as err:
            raise SpecError(
                f"undecodable sweep spec at {path}: {err}") from err
        if not isinstance(spec, cls):
            raise SpecError(
                f"{path} holds {type(spec).__name__}, not a SweepSpec")
        return spec
