"""Unit tests for the checkpoint/fork engine (repro.core.checkpoint)."""

import pytest

from repro.core.checkpoint import (Checkpoint, CheckpointError,
                                   audit_scheduler)
from repro.core.orchestrator import make_env


class Counter:
    """A minimal self-rescheduling rig: bound-method callbacks only."""

    def __init__(self, env, period=1.0):
        self.env = env
        self.fired = 0
        env.scheduler.schedule(period, self.tick, period)

    def tick(self, period):
        self.fired += 1
        self.env.trace.record("counter.tick", n=self.fired)
        self.env.scheduler.schedule(period, self.tick, period)


def warmed_env(depth=5.0):
    env = make_env(seed=0)
    counter = Counter(env)
    env.run_until(depth)
    return env, counter


# ----------------------------------------------------------------------
# capture / fork semantics
# ----------------------------------------------------------------------

def test_fork_continues_where_capture_left_off():
    env, counter = warmed_env(5.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    forked = cp.fork()
    assert forked.env.scheduler.now == 5.0
    assert forked["counter"].fired == 5
    forked.env.run_until(10.0)
    assert forked["counter"].fired == 10


def test_capture_leaves_the_original_running():
    env, counter = warmed_env(5.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    forked = cp.fork()
    forked.env.run_until(10.0)
    # the original world never moved
    assert env.scheduler.now == 5.0
    assert counter.fired == 5
    # ...and still runs to the same place the fork reached
    env.run_until(10.0)
    assert counter.fired == forked["counter"].fired == 10


def test_forks_are_mutually_independent():
    env, counter = warmed_env(3.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    a, b = cp.fork(), cp.fork()
    a.env.run_until(20.0)
    assert b.env.scheduler.now == 3.0
    b.env.run_until(20.0)
    assert a["counter"].fired == b["counter"].fired == 20
    assert cp.forks == 2


def test_trace_prefix_is_shared_not_copied():
    env, counter = warmed_env(4.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    forked = cp.fork()
    prefix = list(env.trace)
    assert [a is b for a, b in zip(prefix, list(forked.env.trace))] \
        == [True] * len(prefix)
    forked.env.run_until(6.0)
    assert len(forked.env.trace) > len(prefix)
    assert list(env.trace) == prefix  # parent undisturbed


def test_capture_compacts_tombstones_first():
    env, counter = warmed_env(2.0)
    doomed = [env.scheduler.schedule(50.0 + i, counter.tick, 1.0)
              for i in range(10)]
    for event in doomed:
        event.cancel()
    before = env.scheduler.compactions
    cp = Checkpoint.capture(env, {"counter": counter})
    assert env.scheduler.compactions == before + 1
    assert cp.fork().env.scheduler.pending_count == 1


def test_default_label_and_repr():
    env, _counter = warmed_env(5.0)
    cp = Checkpoint.capture(env)
    assert cp.label == "t=5"
    assert "t=5" in repr(cp)
    assert cp.position == len(env.trace)


# ----------------------------------------------------------------------
# the capture-time audit
# ----------------------------------------------------------------------

def test_capture_rejects_closure_callbacks():
    env, _counter = warmed_env(1.0)
    leaked = []
    env.scheduler.schedule(1.0, lambda: leaked.append(1))
    with pytest.raises(CheckpointError, match="closure"):
        Checkpoint.capture(env)


def test_capture_rejects_world_smuggling_defaults():
    env, counter = warmed_env(1.0)

    def poke(target=counter):
        target.fired += 1

    env.scheduler.schedule(1.0, poke)
    with pytest.raises(CheckpointError, match="default"):
        Checkpoint.capture(env)


def test_audit_accepts_clean_heaps_and_atomic_defaults():
    env, _counter = warmed_env(1.0)

    def ping(n=3, tag="x"):
        return n, tag

    env.scheduler.schedule(1.0, ping)
    assert audit_scheduler(env.scheduler) == []


def test_audit_recurses_into_partials():
    import functools
    env, _counter = warmed_env(1.0)
    captured = []
    env.scheduler.schedule(1.0, functools.partial(
        lambda: captured.append(1)))
    issues = audit_scheduler(env.scheduler)
    assert len(issues) == 1 and "closure" in issues[0]


def test_audit_false_skips_the_check():
    env, _counter = warmed_env(1.0)
    env.scheduler.schedule(1.0, lambda: None)
    Checkpoint.capture(env, audit=False)  # does not raise


# ----------------------------------------------------------------------
# re-seeding forks
# ----------------------------------------------------------------------

def test_fork_reseed_matches_cold_run():
    env, _counter = warmed_env(2.0)
    stream = env.dist("noise", "a")  # derived, but never drawn from
    cp = Checkpoint.capture(env)
    forked = cp.fork(seed=7)
    assert forked.env.seed == 7
    cold = make_env(seed=7)
    assert forked.env.dists[0].dst_uniform(0, 1) \
        == cold.dist("noise", "a").dst_uniform(0, 1)
    assert stream.draws == 0  # the original stream was never touched


def test_fork_same_seed_skips_reseed():
    env, _counter = warmed_env(2.0)
    stream = env.dist("noise")
    stream.dst_uniform(0, 1)  # consumed -- reseed would refuse
    cp = Checkpoint.capture(env)
    cp.fork(seed=0)  # captured seed: no reseed attempted, no error


def test_fork_reseed_refuses_consumed_streams():
    env, _counter = warmed_env(2.0)
    env.dist("noise").dst_uniform(0, 1)
    cp = Checkpoint.capture(env)
    with pytest.raises(CheckpointError, match="re-seeded"):
        cp.fork(seed=9)


# ----------------------------------------------------------------------
# identity digests
# ----------------------------------------------------------------------

def test_identity_stable_across_identical_captures():
    def build():
        env, counter = warmed_env(5.0)
        return Checkpoint.capture(env, {"counter": counter}, label="x")
    assert build().identity == build().identity


def test_identity_distinguishes_depth_label_and_seed():
    def capture(depth=5.0, label="x", seed=0):
        env = make_env(seed=seed)
        Counter(env)
        env.run_until(depth)
        return Checkpoint.capture(env, label=label).identity

    base = capture()
    assert capture(depth=6.0) != base
    assert capture(label="y") != base
    assert capture(seed=1) != base
