"""Unit/behaviour tests for the group membership daemon."""

import pytest

from repro.experiments.gmp_common import build_gmp_cluster
from repro.gmp.daemon import gmp_stubs
from repro.gmp.messages import GmpMessage, PROCLAIM
from repro.xkernel.message import Message


def cluster_of(*addrs, **kw):
    return build_gmp_cluster(list(addrs), **kw)


class TestGroupFormation:
    def test_two_daemons_form_group(self):
        cluster = cluster_of(1, 2)
        cluster.start()
        cluster.run_until(8.0)
        assert cluster.all_in_one_group()
        assert cluster.daemons[1].is_leader
        assert not cluster.daemons[2].is_leader

    def test_three_daemons_converge(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start()
        cluster.run_until(10.0)
        assert cluster.all_in_one_group()

    def test_five_daemons_converge(self):
        cluster = cluster_of(1, 2, 3, 4, 5)
        cluster.start()
        cluster.run_until(15.0)
        assert cluster.all_in_one_group()

    def test_leader_is_lowest_address(self):
        cluster = cluster_of(4, 7, 9)
        cluster.start()
        cluster.run_until(10.0)
        for daemon in cluster.daemons.values():
            assert daemon.view.leader == 4

    def test_crown_prince_is_second_lowest(self):
        cluster = cluster_of(4, 7, 9)
        cluster.start()
        cluster.run_until(10.0)
        assert cluster.daemons[7].is_crown_prince

    def test_late_joiner_admitted(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start(1, 2)
        cluster.run_until(8.0)
        assert cluster.daemons[1].view.members == (1, 2)
        cluster.start(3)
        cluster.run_until(20.0)
        assert cluster.all_in_one_group()

    def test_group_stable_over_time(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start()
        cluster.run_until(10.0)
        gid = cluster.daemons[1].view.group_id
        cluster.run_until(120.0)
        assert cluster.daemons[1].view.group_id == gid

    def test_all_members_see_same_view_sequence_suffix(self):
        """Strong membership: the committed views agree."""
        cluster = cluster_of(1, 2, 3)
        cluster.start()
        cluster.run_until(20.0)
        final = {a: d.view for a, d in cluster.daemons.items()}
        assert len({v.group_id for v in final.values()}) == 1
        assert len({v.members for v in final.values()}) == 1


class TestFailureDetection:
    def test_halted_member_kicked(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start()
        cluster.run_until(10.0)
        cluster.env.network.node(3).halt()
        cluster.run_until(30.0)
        assert cluster.daemons[1].view.members == (1, 2)
        assert cluster.daemons[2].view.members == (1, 2)

    def test_halted_leader_succeeded_by_crown_prince(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start()
        cluster.run_until(10.0)
        cluster.env.network.node(1).halt()
        cluster.run_until(30.0)
        assert cluster.daemons[2].view.members == (2, 3)
        assert cluster.daemons[2].is_leader
        assert cluster.daemons[3].view.members == (2, 3)

    def test_leader_and_prince_halted_third_takes_over(self):
        cluster = cluster_of(1, 2, 3, 4)
        cluster.start()
        cluster.run_until(10.0)
        cluster.env.network.node(1).halt()
        cluster.env.network.node(2).halt()
        cluster.run_until(40.0)
        assert cluster.daemons[3].view.members == (3, 4)
        assert cluster.daemons[3].is_leader

    def test_all_peers_dead_leads_to_singleton(self):
        cluster = cluster_of(1, 2)
        cluster.start()
        cluster.run_until(8.0)
        cluster.env.network.node(1).halt()
        cluster.run_until(30.0)
        assert cluster.daemons[2].view.members == (2,)

    def test_halted_member_rejoins_after_restartish_resume(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start()
        cluster.run_until(10.0)
        cluster.daemons[3].suspend()
        cluster.run_until(40.0)
        assert cluster.daemons[1].view.members == (1, 2)
        cluster.daemons[3].resume()
        cluster.run_until(80.0)
        assert cluster.all_in_one_group()


class TestTwoPhaseCommit:
    def test_membership_change_trace_sequence(self):
        cluster = cluster_of(1, 2)
        cluster.start()
        cluster.run_until(8.0)
        trace = cluster.trace
        mc = trace.first("gmp.mc_sent", node=1)
        commit = trace.first("gmp.commit_sent", node=1)
        transition = trace.first("gmp.in_transition", node=2)
        adopted = trace.first("gmp.view_adopted", node=2)
        assert mc.time <= transition.time <= commit.time <= adopted.time

    def test_members_in_transition_between_phases(self):
        cluster = cluster_of(1, 2)
        cluster.start()
        cluster.run_until(8.0)
        assert cluster.trace.count("gmp.in_transition", node=2) >= 1

    def test_group_ids_monotonic_per_daemon(self):
        cluster = cluster_of(1, 2, 3)
        cluster.start(1, 2)
        cluster.run_until(8.0)
        cluster.start(3)
        cluster.run_until(20.0)
        for daemon in cluster.daemons.values():
            gids = [v.group_id for v in daemon.views_adopted]
            assert gids == sorted(gids)


class TestDaemonLifecycle:
    def test_double_start_rejected(self):
        cluster = cluster_of(1)
        cluster.daemons[1].start()
        with pytest.raises(RuntimeError):
            cluster.daemons[1].start()

    def test_unstarted_daemon_ignores_messages(self):
        cluster = cluster_of(1, 2)
        cluster.daemons[1].start()
        cluster.run_until(10.0)
        assert cluster.daemons[1].view.members == (1,)
        assert cluster.daemons[2].view.members == (2,)
        assert not cluster.daemons[2].views_adopted

    def test_suspended_daemon_ignores_messages(self):
        cluster = cluster_of(1, 2)
        cluster.start()
        cluster.run_until(8.0)
        cluster.daemons[2].suspend()
        received_before = cluster.trace.count("gmp.receive", node=2)
        cluster.run_until(12.0)
        assert cluster.trace.count("gmp.receive", node=2) == received_before


class TestStubs:
    def test_recognize_all_kinds(self):
        stubs = gmp_stubs()
        msg = Message(payload=GmpMessage(kind=PROCLAIM, sender=1))
        assert stubs.msg_type(msg) == "PROCLAIM"

    def test_recognize_rel_ack(self):
        from repro.gmp.reliable import RelHeader
        stubs = gmp_stubs()
        msg = Message()
        msg.push_header(RelHeader(seq=1, is_ack=True))
        assert stubs.msg_type(msg) == "REL_ACK"

    def test_generate_probe(self):
        stubs = gmp_stubs()
        msg = stubs.generate("PROCLAIM", sender=9, dst=1)
        assert msg.payload.kind == "PROCLAIM"
        assert msg.payload.originator == 9
        assert msg.meta["dst"] == 1
