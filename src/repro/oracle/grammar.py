"""Random fault-script generation over the ``@cmd``-declared PFI commands.

The fuzzer's input space is tclish filter scripts.  Rather than mutating
raw text (almost every random edit of which fails to parse), scripts are
built from a small clause grammar::

    script  := clause+                     (1..MAX_CLAUSES clauses)
    clause  := [guard] action | composite
    guard   := msg-type test | chance | virtual-time test
    action  := drop | delay | duplicate | log | corrupt-field
    composite := reorder (hold/release pair) | crash-after-N

Every command a template may emit is checked against
:data:`~repro.core.script.PFI_COMMANDS` at import time, so the grammar
can never drift from the registered command set, and every generated
script is lint-clean by construction (guarded by the same static
analysis the campaign engine applies -- see
:func:`repro.core.genscripts.lint_generated` for the precedent).

Scripts serialize to plain dicts (clause lists), which is what the
shrinker's reproduction artifacts store: a shrunk script is re-rendered
from its surviving clauses, not from edited text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.distributions import derive_seed
from repro.core.script import PFI_COMMANDS

#: message-type vocabulary per protocol (mirrors the genscripts specs)
MESSAGE_TYPES: Dict[str, Tuple[str, ...]] = {
    "tcp": ("SYN", "SYNACK", "ACK", "DATA", "FIN", "RST"),
    "gmp": ("HEARTBEAT", "PROCLAIM", "JOIN", "MEMBERSHIP_CHANGE", "ACK",
            "NACK", "COMMIT", "DEAD_REPORT"),
}

#: corruptible header fields per protocol, with the values to write
CORRUPT_FIELDS: Dict[str, Tuple[Tuple[str, str, object], ...]] = {
    "tcp": (("ACK", "ack", 0), ("DATA", "seq", 0),
            ("ACK", "window", 0)),
    "gmp": (("MEMBERSHIP_CHANGE", "group_id", 0),
            ("PROCLAIM", "originator", 0),
            ("DEAD_REPORT", "subject", 0)),
}

DELAYS = (0.5, 1.5, 3.0)
CHANCES = (0.1, 0.25, 0.5)
TIME_GATES = (10.0, 15.0, 20.0)
CRASH_COUNTS = (5, 15, 30)
MAX_CLAUSES = 3

#: every PFI command the grammar's templates may emit
GRAMMAR_COMMANDS = ("msg_type", "msg_log", "msg_set_field", "chance",
                    "now", "xDrop", "xDelay", "xDuplicate", "xHold",
                    "xRelease")

_missing = [name for name in GRAMMAR_COMMANDS if name not in PFI_COMMANDS]
if _missing:  # pragma: no cover - import-time grammar/registry drift guard
    raise ImportError(f"fuzz grammar references unregistered PFI "
                      f"commands: {_missing}")


@dataclass(frozen=True)
class Clause:
    """One self-contained statement of a generated script.

    ``init`` carries the init-script line the clause needs (e.g. its
    counter variable); identical lines from several clauses are merged
    when the script renders.
    """

    text: str
    init: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"text": self.text, "init": self.init}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Clause":
        return cls(text=data["text"], init=data.get("init", ""))


@dataclass(frozen=True)
class FuzzScript:
    """A generated fault script: clause list plus placement metadata."""

    name: str
    protocol: str
    direction: str               # "send" or "receive"
    clauses: Tuple[Clause, ...]

    @property
    def source(self) -> str:
        return "\n".join(clause.text for clause in self.clauses)

    @property
    def init(self) -> str:
        lines = [c.init for c in self.clauses if c.init]
        return "\n".join(dict.fromkeys(lines))

    def with_clauses(self, clauses: Sequence[Clause],
                     name: str = "") -> "FuzzScript":
        return FuzzScript(name=name or self.name, protocol=self.protocol,
                          direction=self.direction, clauses=tuple(clauses))

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "protocol": self.protocol,
                "direction": self.direction,
                "clauses": [c.to_dict() for c in self.clauses]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzScript":
        return cls(name=data["name"], protocol=data["protocol"],
                   direction=data["direction"],
                   clauses=tuple(Clause.from_dict(c)
                                 for c in data["clauses"]))


# ----------------------------------------------------------------------
# clause generators
# ----------------------------------------------------------------------

def _guard(rng: random.Random, protocol: str) -> str:
    """A tclish condition, or '' for an unconditional clause."""
    roll = rng.random()
    if roll < 0.55:
        mtype = rng.choice(MESSAGE_TYPES[protocol])
        return f'[msg_type cur_msg] eq "{mtype}"'
    if roll < 0.8:
        return f"[chance {rng.choice(CHANCES)}]"
    if roll < 0.9:
        return f"[now] > {rng.choice(TIME_GATES)}"
    return ""


def _action(rng: random.Random, protocol: str) -> str:
    roll = rng.random()
    if roll < 0.45:
        return "xDrop cur_msg"
    if roll < 0.7:
        return f"xDelay {rng.choice(DELAYS)}"
    if roll < 0.85:
        return "xDuplicate cur_msg 1"
    if roll < 0.95 and CORRUPT_FIELDS[protocol]:
        _mtype, field, value = rng.choice(CORRUPT_FIELDS[protocol])
        return f"msg_set_field {field} {value}"
    return "msg_log cur_msg fuzz"


def _simple_clause(rng: random.Random, protocol: str) -> Clause:
    guard = _guard(rng, protocol)
    action = _action(rng, protocol)
    if not guard:
        return Clause(text=action)
    return Clause(text=f"if {{{guard}}} {{ {action} }}")


def _reorder_clause(rng: random.Random, protocol: str) -> Clause:
    mtype = rng.choice(MESSAGE_TYPES[protocol])
    return Clause(
        text=(f'if {{[msg_type cur_msg] eq "{mtype}"}} {{\n'
              f'    if {{!$fz_holding}} {{\n'
              f'        set fz_holding 1\n'
              f'        xHold cur_msg fzreorder\n'
              f'    }} else {{\n'
              f'        set fz_holding 0\n'
              f'        xRelease fzreorder\n'
              f'    }}\n'
              f'}}'),
        init="set fz_holding 0")


def _crash_clause(rng: random.Random, _protocol: str) -> Clause:
    n = rng.choice(CRASH_COUNTS)
    return Clause(
        text=(f"incr fz_seen\n"
              f"if {{$fz_seen > {n}}} {{ xDrop cur_msg }}"),
        init="set fz_seen 0")


def _clause(rng: random.Random, protocol: str) -> Clause:
    roll = rng.random()
    if roll < 0.8:
        return _simple_clause(rng, protocol)
    if roll < 0.9:
        return _reorder_clause(rng, protocol)
    return _crash_clause(rng, protocol)


# ----------------------------------------------------------------------
# script generation / mutation
# ----------------------------------------------------------------------

class GrammarLintError(AssertionError):
    """A generated script failed static analysis.

    Like :class:`repro.core.genscripts.GenerationLintError`, this is the
    grammar's own regression guard: it can only fire if a template edit
    breaks the tclish the grammar emits.
    """


def _self_check(script: FuzzScript) -> FuzzScript:
    from repro.core.tclish.lint import lint_source
    report = lint_source(script.source, init_script=script.init,
                         source_name=script.name)
    if not report.ok():
        raise GrammarLintError(
            f"grammar produced a script failing lint: {script.name}\n"
            f"{script.source}")
    return script


def generate_script(rng: random.Random, protocol: str, *,
                    direction: str = "", index: int = 0) -> FuzzScript:
    """Draw one script from the grammar (lint-clean, deterministic)."""
    if protocol not in MESSAGE_TYPES:
        raise ValueError(f"unknown protocol {protocol!r}")
    if not direction:
        direction = rng.choice(("send", "receive"))
    count = rng.randint(1, MAX_CLAUSES)
    clauses = tuple(_clause(rng, protocol) for _ in range(count))
    return _self_check(FuzzScript(
        name=f"fuzz_{protocol}_{index:04d}", protocol=protocol,
        direction=direction, clauses=clauses))


def mutate_script(rng: random.Random, script: FuzzScript, *,
                  index: int = 0) -> FuzzScript:
    """Derive a neighbour of ``script``: add, replace, or drop a clause."""
    clauses = list(script.clauses)
    roll = rng.random()
    if roll < 0.4 and len(clauses) < MAX_CLAUSES:
        clauses.insert(rng.randrange(len(clauses) + 1),
                       _clause(rng, script.protocol))
    elif roll < 0.7 or len(clauses) == 1:
        clauses[rng.randrange(len(clauses))] = _clause(rng, script.protocol)
    else:
        del clauses[rng.randrange(len(clauses))]
    return _self_check(script.with_clauses(
        clauses, name=f"fuzz_{script.protocol}_{index:04d}"))


# ----------------------------------------------------------------------
# shared seeded-selection helpers (also used by repro.core.randomtest)
# ----------------------------------------------------------------------

def seeded_sample(items: Sequence, count: int, *, seed: int) -> List:
    """Sample ``count`` items without replacement, deterministically.

    The one place campaign-style runners draw random subsets; both the
    fuzzer and :func:`repro.core.randomtest.run_campaign` use it so the
    two sides cannot drift on sampling semantics again.
    """
    chosen = list(items)
    if count >= len(chosen):
        return chosen
    return random.Random(seed).sample(chosen, count)


def trial_seed(campaign_seed: int, name: str, repetition: int = 0) -> int:
    """The per-trial seed: derived, so list reordering cannot perturb it."""
    return derive_seed(campaign_seed, name, repetition)
