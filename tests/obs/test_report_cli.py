"""`repro report` / `repro trace`: reconstruct a run from its archive."""

import json

from repro.analysis.export import dump_trace
from repro.cli import main
from repro.obs.report import kind_counts, render_report, trace_metrics


def chain_run(harness):
    """delay -> duplicate -> hold/release chain, archived to JSON lines."""
    def first(ctx):
        if not ctx.state.get("fired"):
            ctx.state["fired"] = True
            ctx.delay(0.5)
            ctx.duplicate(1)
    harness.pfi.set_send_filter(first)
    root = harness.send_down("DATA")
    harness.pfi.set_send_filter(lambda ctx: ctx.hold("q"))
    held = harness.send_down("DATA")
    harness.pfi.set_send_filter(lambda ctx: ctx.release("q"))
    harness.send_down("DATA")
    harness.run(2.0)
    return root, held, dump_trace(harness.env.trace)


class TestRenderReport:
    def test_report_reconstructs_lineage_from_archive(self, harness,
                                                      tmp_path):
        root, held, text = chain_run(harness)
        path = tmp_path / "run.jsonl"
        path.write_text(text)
        rc = main(["report", str(path)])
        assert rc == 0

    def test_sections_present(self, harness):
        _root, _held, _text = chain_run(harness)
        report = render_report(harness.env.trace)
        for section in ("run summary", "metrics", "message lineage",
                        "timeline"):
            assert section in report

    def test_lineage_section_shows_derivation(self, harness):
        root, _held, _text = chain_run(harness)
        report = render_report(harness.env.trace)
        assert f"uid {root.uid}" in report
        assert "[duplicate]" in report

    def test_kind_prefix_restricts(self, harness):
        chain_run(harness)
        harness.env.trace.record("other.event", t=9.0)
        report = render_report(harness.env.trace, kind_prefix="pfi.")
        assert "other.event" not in report

    def test_tail_elides_earlier_entries(self, harness):
        chain_run(harness)
        report = render_report(harness.env.trace, tail=2)
        assert "earlier entries elided" in report


class TestReportCli:
    def test_report_output_contains_lineage(self, harness, tmp_path,
                                            capsys):
        root, _held, text = chain_run(harness)
        path = tmp_path / "run.jsonl"
        path.write_text(text)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"uid {root.uid}" in out
        assert "[duplicate]" in out
        assert "pfi_duplicated{node=testnode}" in out

    def test_report_uid_prints_single_tree(self, harness, tmp_path,
                                           capsys):
        root, _held, text = chain_run(harness)
        dup_uid = harness.env.trace.first("pfi.duplicate")["uid"]
        path = tmp_path / "run.jsonl"
        path.write_text(text)
        assert main(["report", str(path), "--uid", str(dup_uid)]) == 0
        out = capsys.readouterr().out
        # asking about the duplicate renders the tree from its root
        assert f"uid {root.uid}" in out

    def test_report_unknown_uid_fails(self, harness, tmp_path):
        _root, _held, text = chain_run(harness)
        path = tmp_path / "run.jsonl"
        path.write_text(text)
        assert main(["report", str(path), "--uid", "999999"]) == 2


class TestTraceCli:
    def test_trace_stdout_is_valid_json(self, harness, tmp_path, capsys):
        _root, _held, text = chain_run(harness)
        path = tmp_path / "run.jsonl"
        path.write_text(text)
        assert main(["trace", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["traceEvents"]

    def test_trace_out_writes_file(self, harness, tmp_path):
        _root, _held, text = chain_run(harness)
        path = tmp_path / "run.jsonl"
        path.write_text(text)
        out = tmp_path / "run.trace.json"
        assert main(["trace", str(path), "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in data["traceEvents"])


class TestTraceMetrics:
    def test_counters_recovered_from_trace(self, harness):
        chain_run(harness)
        snap = trace_metrics(harness.env.trace).snapshot()
        assert snap["pfi_delayed{node=testnode}"] == 1
        assert snap["pfi_duplicated{node=testnode}"] == 1
        assert snap["pfi_released{node=testnode}"] == 1
        assert snap["trace_entries{kind=pfi.hold}"] == 1

    def test_kind_counts(self, harness):
        chain_run(harness)
        counts = kind_counts(harness.env.trace)
        assert counts["pfi.duplicate"] == 1
        assert list(counts) == sorted(counts)


class TestCampaignJournalCli:
    """`repro tail` / `repro history` / `repro report --campaign`."""

    def _journal(self, tmp_path):
        from tests.obs.test_campaign_report import _write_sweep
        return _write_sweep(tmp_path / "sweep.jsonl")

    def test_report_campaign_text(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["report", "--campaign", str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign flight record: fuzz" in out
        assert "top scenarios by bug yield:" in out

    def test_report_campaign_json(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["report", "--campaign", str(path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "fuzz"
        assert payload["findings"] == 1

    def test_report_campaign_html(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        out = tmp_path / "report.html"
        assert main(["report", "--campaign", str(path),
                     "--html", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_report_campaign_missing_journal(self, tmp_path):
        assert main(["report", "--campaign",
                     str(tmp_path / "nope.jsonl")]) == 2

    def test_report_without_any_source_fails(self):
        assert main(["report"]) == 2

    def test_tail_renders_every_event(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign.start" in out
        assert "campaign.run_end" in out
        assert "campaign.end" in out

    def test_tail_reports_torn_tail(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        path.write_bytes(path.read_bytes()[:-9])
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "torn" in out

    def test_tail_missing_journal(self, tmp_path):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2

    def test_history_record_and_render(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        hist = tmp_path / "hist"
        assert main(["history", str(hist), "--record", str(path)]) == 0
        capsys.readouterr()
        assert main(["history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "1 recorded sweep(s)" in out
        assert "findings 1" in out

    def test_history_json(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        hist = tmp_path / "hist"
        assert main(["history", str(hist), "--record", str(path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 1

    def test_trace_journal_export(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["trace", "--journal", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert any(e.get("ph") == "X" for e in data["traceEvents"])

    def test_trace_without_any_source_fails(self):
        assert main(["trace"]) == 2
