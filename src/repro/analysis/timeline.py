"""ASCII message-sequence diagrams from traces.

The paper's Experiment 2 narrates its key discovery as a message-sequence
ladder (A sends m1, B's ACK is delayed, the PFI starts dropping, ...).
This module renders the same notation from a run's trace::

        vendor                xkernel
  0.000 |--------- SYN ----------->|
  0.002 |<------- SYNACK ----------|
  0.504 |-------- DATA ------x     |   (lost in flight)

Build a :class:`SequenceDiagram` directly, or extract one from a trace
with :func:`gmp_sequence` (GMP sends matched to receives, unmatched =
lost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.netsim.trace import TraceRecorder


@dataclass
class SequenceEvent:
    """One arrow of the ladder."""

    time: float
    src: str
    dst: str
    label: str
    lost: bool = False


class SequenceDiagram:
    """Two-or-more participant ASCII ladder."""

    def __init__(self, participants: Sequence[str], *, lane_width: int = 26):
        if len(participants) < 2:
            raise ValueError("a sequence diagram needs >= 2 participants")
        self.participants = list(participants)
        self.lane_width = lane_width
        self.events: List[SequenceEvent] = []

    def add(self, time: float, src: str, dst: str, label: str, *,
            lost: bool = False) -> None:
        """Record one message arrow."""
        for name in (src, dst):
            if name not in self.participants:
                raise KeyError(f"unknown participant {name!r}")
        self.events.append(SequenceEvent(time, src, dst, label, lost))

    def render(self, *, max_events: Optional[int] = None) -> str:
        """The ladder, one line per message, time-ordered."""
        width = self.lane_width
        header = " " * 9 + "".join(f"{name:^{width}}"
                                   for name in self.participants)
        lines = [header]
        events = sorted(self.events, key=lambda e: e.time)
        if max_events is not None and len(events) > max_events:
            skipped = len(events) - max_events
            events = events[:max_events]
        else:
            skipped = 0
        for event in events:
            lines.append(self._render_event(event))
        if skipped:
            lines.append(f"          ... {skipped} more message(s)")
        return "\n".join(lines)

    def _render_event(self, event: SequenceEvent) -> str:
        width = self.lane_width
        src_i = self.participants.index(event.src)
        dst_i = self.participants.index(event.dst)
        lo, hi = sorted((src_i, dst_i)) if src_i != dst_i \
            else (src_i, src_i + 1 if src_i + 1 < len(self.participants)
                  else src_i - 1)
        lo, hi = min(lo, hi), max(lo, hi)
        span = (hi - lo) * width - 2      # characters between the lanes
        label = event.label
        if len(label) > span - 8:
            label = label[:max(1, span - 11)] + "..."
        pad_total = max(0, span - len(label) - 2)
        left_pad = pad_total // 2
        right_pad = pad_total - left_pad
        if event.src == event.dst:
            arrow = "|" + f"(self: {label})".center(span) + "|"
        elif src_i < dst_i:
            body = "-" * left_pad + " " + label + " " + "-" * right_pad
            arrow = "|" + (body[:-2] + "x " if event.lost
                           else body[:-1] + ">") + "|"
        else:
            body = "-" * left_pad + " " + label + " " + "-" * right_pad
            arrow = "|" + ("x" + body[2:] if event.lost
                           else "<" + body[1:]) + "|"
        # indent the arrow to sit between lane centrelines lo and hi
        indent = lo * width + width // 2
        return (f"{event.time:8.3f} " + " " * indent + arrow).rstrip()


def tcp_sequence(trace: TraceRecorder, lanes: Dict[str, str], *,
                 start: float = 0.0, end: float = float("inf"),
                 lane_width: int = 26,
                 include_acks: bool = True) -> SequenceDiagram:
    """Extract a TCP segment ladder from a trace.

    ``lanes`` maps connection names (the ``conn`` trace attribute) to lane
    labels, e.g. ``{"vendor:5000": "vendor", "xkernel:80": "xkernel"}``.
    A transmission with no matching ``tcp.receive`` on the peer lane is
    drawn as lost.  Labels carry the segment type, sequence number, and a
    retransmission marker.
    """
    if len(lanes) != 2:
        raise ValueError("tcp_sequence draws exactly two connections")
    (conn_a, name_a), (conn_b, name_b) = lanes.items()
    peer = {conn_a: conn_b, conn_b: conn_a}
    names = {conn_a: name_a, conn_b: name_b}
    diagram = SequenceDiagram([name_a, name_b], lane_width=lane_width)
    receives = list(trace.entries("tcp.receive"))
    used = [False] * len(receives)
    for sent in trace.entries("tcp.transmit"):
        if not start <= sent.time <= end:
            continue
        conn = sent.get("conn")
        if conn not in names:
            continue
        if not include_acks and sent.get("msg_type") == "ACK":
            continue
        delivered = False
        for i, received in enumerate(receives):
            if used[i]:
                continue
            if (received.get("conn") == peer[conn]
                    and received.get("seq") == sent.get("seq")
                    and received.get("msg_type") == sent.get("msg_type")
                    and received.get("ack") == sent.get("ack")
                    and received.time >= sent.time):
                used[i] = True
                delivered = True
                break
        label = f"{sent.get('msg_type')} seq={sent.get('seq')}"
        if sent.get("retransmission"):
            label += " (rtx)"
        diagram.add(sent.time, names[conn], names[peer[conn]], label,
                    lost=not delivered)
    return diagram


def gmp_sequence(trace: TraceRecorder, nodes: Sequence[int], *,
                 kinds: Optional[Iterable[str]] = None,
                 start: float = 0.0, end: float = float("inf"),
                 lane_width: int = 26) -> SequenceDiagram:
    """Extract a GMP message ladder from a trace.

    A ``gmp.send`` with no matching ``gmp.receive`` (same kind, sender,
    destination, at a later time) is drawn as lost.
    """
    wanted_kinds = set(kinds) if kinds is not None else None
    node_names = {n: f"gmd{n}" for n in nodes}
    diagram = SequenceDiagram([node_names[n] for n in nodes],
                              lane_width=lane_width)
    receives = list(trace.entries("gmp.receive"))
    used = [False] * len(receives)
    for send in trace.entries("gmp.send"):
        if not start <= send.time <= end:
            continue
        kind = send.get("msg_kind")
        src, dst = send.get("node"), send.get("dst")
        if src not in node_names or dst not in node_names:
            continue
        if wanted_kinds is not None and kind not in wanted_kinds:
            continue
        delivered = False
        for i, receive in enumerate(receives):
            if used[i]:
                continue
            if (receive.get("msg_kind") == kind
                    and receive.get("node") == dst
                    and receive.get("src") == src
                    and receive.time >= send.time):
                used[i] = True
                delivered = True
                break
        diagram.add(send.time, node_names[src], node_names[dst], kind,
                    lost=not delivered)
    return diagram
