"""GMP message types.

The strong group membership protocol exchanges seven message kinds:

- ``HEARTBEAT`` -- periodic liveness, sent to every member of the current
  view *including the local machine* (the loopback heartbeat is what made
  the paper's self-death bug reachable);
- ``PROCLAIM`` -- "machines which desire to be in a group send proclaim
  messages to potential members"; carries the *originator* separately from
  the immediate *sender* because group members forward proclaims to their
  leader (the distinction the paper's forwarding bug confused);
- ``JOIN`` -- sent to a lower-addressed machine to ask admission;
- ``MEMBERSHIP_CHANGE`` -- phase one of the leader's two-phase commit,
  proposing a new member list;
- ``ACK`` / ``NACK`` -- member responses to a proposed change;
- ``COMMIT`` -- phase two, finalizing the new view;
- ``DEAD_REPORT`` -- a member telling the leader that some machine's
  heartbeats stopped (also the message a buggy daemon sends about
  *itself*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

HEARTBEAT = "HEARTBEAT"
PROCLAIM = "PROCLAIM"
JOIN = "JOIN"
MEMBERSHIP_CHANGE = "MEMBERSHIP_CHANGE"
ACK = "ACK"
NACK = "NACK"
COMMIT = "COMMIT"
DEAD_REPORT = "DEAD_REPORT"

ALL_KINDS = (HEARTBEAT, PROCLAIM, JOIN, MEMBERSHIP_CHANGE, ACK, NACK,
             COMMIT, DEAD_REPORT)


@dataclass
class GmpMessage:
    """One GMP protocol message."""

    kind: str
    sender: int
    originator: int = -1
    subject: int = -1          # DEAD_REPORT: who is being reported dead
    group_id: int = 0          # incarnation of the group being formed/run
    members: Tuple[int, ...] = ()
    down: bool = False         # buggy self-death daemons mark themselves down

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown GMP message kind {self.kind!r}")
        if self.originator < 0:
            self.originator = self.sender

    def copy(self) -> "GmpMessage":
        return GmpMessage(kind=self.kind, sender=self.sender,
                          originator=self.originator, subject=self.subject,
                          group_id=self.group_id, members=tuple(self.members),
                          down=self.down)

    #: opt-in to the Message ``clone()`` protocol so duplicating a wrapped
    #: GMP wire message never reaches ``copy.deepcopy``
    clone = copy

    def __repr__(self) -> str:
        extra = ""
        if self.kind == DEAD_REPORT:
            extra = f" subject={self.subject}"
        if self.members:
            extra += f" members={list(self.members)}"
        return (f"GmpMessage({self.kind} from={self.sender} "
                f"orig={self.originator} gid={self.group_id}{extra})")
