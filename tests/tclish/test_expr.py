"""Unit tests for the tclish expression evaluator."""

import pytest

from repro.core.tclish.errors import TclError
from repro.core.tclish.expr import (coerce_number, evaluate, format_value,
                                    is_numeric, truth)


class TestArithmetic:
    @pytest.mark.parametrize("text,expected", [
        ("1 + 2", 3),
        ("10 - 4", 6),
        ("3 * 4", 12),
        ("10 / 2", 5),
        ("7 % 3", 1),
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("-5 + 2", -3),
        ("+7", 7),
        ("2.5 * 2", 5.0),
        ("1e2 + 1", 101.0),
        ("0x10 + 1", 17),
    ])
    def test_basic(self, text, expected):
        assert evaluate(text) == expected

    def test_integer_division_truncates(self):
        assert evaluate("7 / 2") == 3

    def test_float_division(self):
        assert evaluate("7.0 / 2") == 3.5

    def test_divide_by_zero(self):
        with pytest.raises(TclError):
            evaluate("1 / 0")
        with pytest.raises(TclError):
            evaluate("1 % 0")


class TestComparison:
    @pytest.mark.parametrize("text,expected", [
        ("1 < 2", 1),
        ("2 < 1", 0),
        ("2 <= 2", 1),
        ("3 > 2", 1),
        ("3 >= 4", 0),
        ("5 == 5", 1),
        ("5 == 5.0", 1),
        ("5 != 6", 1),
        ('"abc" eq "abc"', 1),
        ('"abc" ne "abd"', 1),
        ('"10" == 10', 1),
        ('"abc" == "abc"', 1),
    ])
    def test_comparisons(self, text, expected):
        assert evaluate(text) == expected

    def test_string_relational(self):
        assert evaluate('"apple" < "banana"') == 1


class TestLogic:
    @pytest.mark.parametrize("text,expected", [
        ("1 && 1", 1),
        ("1 && 0", 0),
        ("0 || 1", 1),
        ("0 || 0", 0),
        ("!0", 1),
        ("!5", 0),
        ("1 ? 10 : 20", 10),
        ("0 ? 10 : 20", 20),
        ("1 < 2 ? 1 + 1 : 9", 2),
    ])
    def test_logic(self, text, expected):
        assert evaluate(text) == expected

    def test_bitwise(self):
        assert evaluate("6 & 3") == 2
        assert evaluate("6 | 3") == 7
        assert evaluate("6 ^ 3") == 5
        assert evaluate("~0") == -1
        assert evaluate("1 << 4") == 16
        assert evaluate("16 >> 2") == 4


class TestFunctions:
    @pytest.mark.parametrize("text,expected", [
        ("abs(-4)", 4),
        ("int(3.7)", 3),
        ("double(3)", 3.0),
        ("round(3.5)", 4),
        ("min(3, 1, 2)", 1),
        ("max(3, 1, 2)", 3),
        ("sqrt(16)", 4.0),
        ("pow(2, 10)", 1024),
    ])
    def test_functions(self, text, expected):
        assert evaluate(text) == expected


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(TclError):
            evaluate("1 + 2 3")

    def test_unterminated_string(self):
        with pytest.raises(TclError):
            evaluate('"oops')

    def test_unexpected_character(self):
        with pytest.raises(TclError):
            evaluate("1 @ 2")

    def test_missing_paren(self):
        with pytest.raises(TclError):
            evaluate("(1 + 2")


class TestHelpers:
    def test_coerce_number(self):
        assert coerce_number("42") == 42
        assert coerce_number(" 3.5 ") == 3.5
        assert coerce_number("0x1f") == 31
        with pytest.raises(TclError):
            coerce_number("banana")

    def test_is_numeric(self):
        assert is_numeric("7")
        assert is_numeric(3.2)
        assert not is_numeric("seven")

    def test_truth(self):
        assert truth("1") and truth("yes") and truth("true") and truth("on")
        assert not truth("0") and not truth("no") and not truth("false")
        assert truth(5) and not truth(0.0)

    def test_format_value(self):
        assert format_value(True) == "1"
        assert format_value(6.0) == "6.0"
        assert format_value(7) == "7"
        assert format_value("str") == "str"
