"""Chrome-trace / Perfetto export."""

import json

from repro.obs.chrometrace import chrome_trace, dump_chrome_trace


def _events(trace, ph=None, name_part=None):
    out = []
    for event in chrome_trace(trace)["traceEvents"]:
        if ph is not None and event["ph"] != ph:
            continue
        if name_part is not None and name_part not in event["name"]:
            continue
        out.append(event)
    return out


def delay_hold_run(harness):
    harness.pfi.set_send_filter(lambda ctx: ctx.delay(0.5))
    harness.send_down("DATA")
    harness.pfi.set_send_filter(lambda ctx: ctx.hold("q"))
    harness.send_down("DATA")
    harness.run(2.0)
    harness.pfi.set_send_filter(lambda ctx: ctx.release("q"))
    harness.send_down("DATA")
    harness.run(3.0)
    return harness.env.trace


class TestSchema:
    def test_output_is_valid_json_with_trace_events(self, harness):
        trace = delay_hold_run(harness)
        data = json.loads(dump_chrome_trace(trace))
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"]
        for event in data["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(event)
            if event["ph"] != "M":
                assert "ts" in event

    def test_metadata_names_processes_and_threads(self, harness):
        trace = delay_hold_run(harness)
        meta = _events(trace, ph="M")
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names.get("process_name") == "testnode"


class TestSpans:
    def test_delay_becomes_duration_span(self, harness):
        trace = delay_hold_run(harness)
        spans = _events(trace, ph="X", name_part="delay")
        assert len(spans) == 1
        assert spans[0]["dur"] == 0.5 * 1_000_000

    def test_hold_release_pair_becomes_one_span(self, harness):
        trace = delay_hold_run(harness)
        spans = _events(trace, ph="X", name_part="hold")
        assert len(spans) == 1
        hold = trace.first("pfi.hold")
        release = trace.first("pfi.release")
        assert spans[0]["ts"] == hold.time * 1_000_000
        assert spans[0]["dur"] == (release.time - hold.time) * 1_000_000

    def test_unreleased_hold_becomes_marker(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.hold("stuck"))
        harness.send_down("DATA")
        harness.run(1.0)
        markers = _events(harness.env.trace, ph="i",
                          name_part="never released")
        assert len(markers) == 1

    def test_other_kinds_become_instants(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.drop())
        harness.send_down("DATA")
        instants = _events(harness.env.trace, ph="i", name_part="pfi.drop")
        assert len(instants) == 1
        assert instants[0]["s"] == "t"


class TestJournalExport:
    def _campaign_journal(self, path):
        from repro.netsim import kinds as K
        from repro.obs.journal import Journal
        with Journal(path) as journal:
            journal.start("campaign", seed=7, configs=2)
            with journal.phase("dispatch"):
                for index in range(2):
                    journal.record(K.CAMPAIGN_RUN_START, index=index,
                                   label=f"cfg_{index}")
                    journal.record(K.CAMPAIGN_RUN_END, index=index,
                                   label=f"cfg_{index}", ok=True)
            journal.record(K.CAMPAIGN_END, status="ok")
        return path

    def test_journal_phases_and_runs_become_spans(self, tmp_path):
        from repro.obs.chrometrace import journal_chrome_trace
        from repro.obs.journal import replay_journal

        replay = replay_journal(self._campaign_journal(tmp_path / "j.jsonl"))
        payload = journal_chrome_trace(replay)
        json.dumps(payload)
        events = payload["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        assert [e["name"] for e in spans if e["tid"] == 1] == ["dispatch"]
        run_spans = [e for e in spans if e["tid"] == 2]
        assert sorted(e["name"] for e in run_spans) == ["cfg_0", "cfg_1"]
        instants = [e for e in events if e.get("ph") == "i"]
        assert any(e["name"] == "campaign.start" for e in instants)
        assert any(e["name"] == "campaign.end" for e in instants)

    def test_run_end_without_start_becomes_instant(self, tmp_path):
        """Fuzz-shaped journals (no run_start) export as instants."""
        from repro.obs.chrometrace import journal_chrome_trace
        from repro.obs.journal import replay_journal
        from tests.obs.test_campaign_report import _write_sweep

        replay = replay_journal(_write_sweep(tmp_path / "j.jsonl"))
        payload = journal_chrome_trace(replay)
        run_events = [e for e in payload["traceEvents"] if e["tid"] == 2
                      and e["ph"] != "M"]
        assert run_events and all(e["ph"] == "i" for e in run_events)

    def test_interrupted_journal_closes_open_spans(self, tmp_path):
        from repro.obs.chrometrace import journal_chrome_trace
        from repro.obs.journal import replay_journal
        from tests.obs.test_campaign_report import _write_sweep

        path = _write_sweep(tmp_path / "j.jsonl", end=False)
        path.write_bytes(path.read_bytes()[:-7])
        payload = journal_chrome_trace(replay_journal(path))
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert spans  # the torn dispatch phase still renders as a span
        for event in spans:
            assert event["dur"] >= 0
