"""Unit tests for the supporting core modules: distributions, sync,
message log, driver, and orchestrator."""

import pytest

from repro.core import (Campaign, DistributionSet, Driver, MessageLog,
                        ScriptSync, derive_seed, make_env)
from repro.core.stubs import PacketStubs
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.xkernel.stack import ProtocolStack


class TestDistributions:
    def test_deterministic_with_seed(self):
        a = DistributionSet(7)
        b = DistributionSet(7)
        assert [a.dst_uniform(0, 1) for _ in range(5)] == \
            [b.dst_uniform(0, 1) for _ in range(5)]

    def test_different_seeds_differ(self):
        a = DistributionSet(1).dst_uniform(0, 1)
        b = DistributionSet(2).dst_uniform(0, 1)
        assert a != b

    def test_normal_centred_on_mean(self):
        dist = DistributionSet(3)
        draws = [dist.dst_normal(10.0, 4.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 9.5 < mean < 10.5

    def test_normal_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            DistributionSet().dst_normal(0, -1)

    def test_uniform_within_bounds(self):
        dist = DistributionSet(4)
        assert all(2 <= dist.dst_uniform(2, 5) <= 5 for _ in range(100))

    def test_exponential_positive(self):
        dist = DistributionSet(5)
        assert all(dist.dst_exponential(2.0) >= 0 for _ in range(100))

    def test_exponential_bad_rate(self):
        with pytest.raises(ValueError):
            DistributionSet().dst_exponential(0)

    def test_bernoulli_extremes(self):
        dist = DistributionSet(6)
        assert all(dist.dst_bernoulli(1.0) for _ in range(10))
        assert not any(dist.dst_bernoulli(0.0) for _ in range(10))

    def test_bernoulli_bad_probability(self):
        with pytest.raises(ValueError):
            DistributionSet().dst_bernoulli(1.5)

    def test_geometric_at_least_one(self):
        dist = DistributionSet(8)
        assert all(dist.dst_geometric(0.5) >= 1 for _ in range(100))

    def test_choice(self):
        dist = DistributionSet(9)
        assert dist.choice([1, 2, 3]) in (1, 2, 3)
        with pytest.raises(ValueError):
            dist.choice([])

    def test_derive_seed_stable_and_label_sensitive(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestScriptSync:
    def test_flags(self):
        sync = ScriptSync()
        assert sync.get_flag("x") is None
        sync.set_flag("x", 5)
        assert sync.get_flag("x") == 5

    def test_on_flag_fires_on_set(self):
        sync = ScriptSync()
        fired = []
        sync.on_flag("go", lambda: fired.append(1))
        assert fired == []
        sync.set_flag("go")
        assert fired == [1]

    def test_on_flag_fires_immediately_if_already_set(self):
        sync = ScriptSync()
        sync.set_flag("go")
        fired = []
        sync.on_flag("go", lambda: fired.append(1))
        assert fired == [1]

    def test_on_flag_with_specific_value(self):
        sync = ScriptSync()
        fired = []
        sync.on_flag("phase", lambda: fired.append(1), value=2)
        sync.set_flag("phase", 1)
        assert fired == []
        sync.set_flag("phase", 2)
        assert fired == [1]

    def test_mailboxes_fifo(self):
        sync = ScriptSync()
        sync.put("box", "a")
        sync.put("box", "b")
        assert sync.mailbox_size("box") == 2
        assert sync.take("box") == "a"
        assert sync.take("box") == "b"
        assert sync.take("box") is None

    def test_barrier_trips_at_parties(self):
        sync = ScriptSync()
        tripped = []
        sync.barrier("all", 3, lambda: tripped.append(1))
        assert not sync.arrive("all", "n1")
        assert not sync.arrive("all", "n2")
        assert sync.arrive("all", "n3")
        assert tripped == [1]
        assert sync.barrier_tripped("all")

    def test_barrier_distinct_parties_only(self):
        sync = ScriptSync()
        sync.barrier("all", 2)
        sync.arrive("all", "n1")
        assert not sync.arrive("all", "n1")

    def test_unknown_barrier_raises(self):
        with pytest.raises(KeyError):
            ScriptSync().arrive("nope", "x")


class TestMessageLog:
    def make_log(self):
        sched = Scheduler()
        trace = TraceRecorder(clock=lambda: sched.now)
        stubs = PacketStubs()
        stubs.register_recognizer(lambda m: m.meta.get("type"))
        return MessageLog(stubs, trace, node="host"), trace

    def test_log_formats_line(self):
        log, _ = self.make_log()
        msg = Message(payload={"seq": 42}, meta={"type": "DATA"})
        line = log.log(msg, t=1.5, direction="receive", note="dropped")
        assert "DATA" in line
        assert "seq=42" in line
        assert "dropped" in line

    def test_log_records_trace_entry(self):
        log, trace = self.make_log()
        msg = Message(payload={"seq": 1}, meta={"type": "ACK"})
        log.log(msg, t=2.0, direction="send")
        entries = trace.entries("pfi.log")
        assert len(entries) == 1
        assert entries[0]["msg_type"] == "ACK"
        assert entries[0]["seq"] == 1

    def test_dump_joins_lines(self):
        log, _ = self.make_log()
        log.log(Message(meta={"type": "A"}), t=0.0, direction="send")
        log.log(Message(meta={"type": "B"}), t=1.0, direction="send")
        assert len(log.dump().splitlines()) == 2
        assert len(log) == 2

    def test_reserved_field_names_get_payload_prefix(self):
        # a GMP-style payload field called "kind" collides with the trace
        # entry's own kind; it must land as payload_kind, untouched
        log, trace = self.make_log()
        msg = Message(payload={"kind": "HEARTBEAT", "seq": 3},
                      meta={"type": "GMP"})
        log.log(msg, t=1.0, direction="send")
        entry = trace.entries("pfi.log")[0]
        assert entry.kind == "pfi.log"
        assert entry["payload_kind"] == "HEARTBEAT"
        assert entry["seq"] == 3
        assert "seq=3" in log.lines[-1]

    def test_metrics_counter_counts_log_calls(self):
        from repro.obs.metrics import MetricsRegistry
        sched = Scheduler()
        trace = TraceRecorder(clock=lambda: sched.now)
        stubs = PacketStubs()
        stubs.register_recognizer(lambda m: m.meta.get("type"))
        registry = MetricsRegistry()
        log = MessageLog(stubs, trace, node="host", metrics=registry)
        log.log(Message(meta={"type": "A"}), t=0.0, direction="send")
        log.log(Message(meta={"type": "B"}), t=1.0, direction="send")
        assert registry.counter("pfi_logged", node="host").value == 2


class BottomSink(Protocol):
    def __init__(self):
        super().__init__("sink")
        self.got = []

    def push(self, msg):
        self.got.append(msg)


class TestDriver:
    def make(self):
        env = make_env()
        driver = Driver("drv", env.scheduler, trace=env.trace)
        sink = BottomSink()
        ProtocolStack().build(driver, sink)
        return env, driver, sink

    def test_send_immediately(self):
        _, driver, sink = self.make()
        driver.send(b"hello")
        assert len(sink.got) == 1

    def test_send_burst_spacing(self):
        env, driver, sink = self.make()
        driver.send_burst([b"a", b"b", b"c"], interval=1.0)
        env.run_until(0.5)
        assert len(sink.got) == 1
        env.run_until(2.5)
        assert len(sink.got) == 3

    def test_receives_recorded(self):
        env, driver, _ = self.make()
        driver.pop(Message(b"up"))
        assert driver.received_payloads == [b"up"]

    def test_pause_and_resume_consuming(self):
        env, driver, _ = self.make()
        driver.pause_consuming()
        driver.pop(Message(b"one"))
        driver.pop(Message(b"two"))
        assert driver.received == []
        assert len(driver.backlog) == 2
        driver.resume_consuming()
        assert driver.received_payloads == [b"one", b"two"]
        assert driver.backlog == []

    def test_on_deliver_callback(self):
        env, driver, _ = self.make()
        seen = []
        driver.on_deliver = seen.append
        driver.pop(Message(b"x"))
        assert len(seen) == 1


class TestOrchestrator:
    def test_make_env_wires_clock(self):
        env = make_env()
        env.scheduler.schedule(2.0, lambda: env.trace.record("tick"))
        env.run_until(3.0)
        assert env.trace.times("tick") == [2.0]

    def test_run_until_quiet(self):
        env = make_env()
        env.scheduler.schedule(1.0, lambda: None)
        env.scheduler.schedule(4.0, lambda: None)
        assert env.run_until_quiet() == 4.0

    def test_env_dist_derivation_is_stable(self):
        env = make_env(seed=5)
        a = env.dist("x").dst_uniform(0, 1)
        b = make_env(seed=5).dist("x").dst_uniform(0, 1)
        assert a == b

    def test_campaign_runs_each_config(self):
        seen = []

        def body(env, config):
            seen.append(config["name"])
            return config["name"].upper()

        campaign = Campaign(body)
        results = campaign.run([{"name": "a"}, {"name": "b"}])
        assert seen == ["a", "b"]
        assert [r.result for r in results] == ["A", "B"]

    def test_campaign_seeds_independent_of_order(self):
        def body(env, config):
            return env.dist("d").dst_uniform(0, 1)

        one = Campaign(body).run([{"n": 1}, {"n": 2}])
        two = Campaign(body).run([{"n": 2}, {"n": 1}])
        by_config_one = {tuple(r.config.items()): r.result for r in one}
        by_config_two = {tuple(r.config.items()): r.result for r in two}
        assert by_config_one == by_config_two


class TestDriverSendAt:
    def test_send_at_fires_once_with_meta(self):
        env = make_env()
        driver = Driver("drv", env.scheduler)
        sink = BottomSink()
        ProtocolStack().build(driver, sink)
        driver.send_at(5.0, b"timed", tag="late")
        env.run_until(4.9)
        assert sink.got == []
        env.run_until(6.0)
        assert len(sink.got) == 1
        assert sink.got[0].meta["tag"] == "late"
