"""Regenerates paper Table 4: TCP zero-window probe results.

Paper rows: all four implementations back their window probes off
exponentially to an upper bound -- 60 s for the BSD family, 56 s for
Solaris (the same clock-skew ratio as its keep-alive interval) -- and
keep probing indefinitely *whether or not* the probes are ACKed, surviving
even a two-day ethernet unplug.
"""

from repro.analysis.tables import render_table
from repro.experiments.tcp_zero_window import (run_all, run_zero_window,
                                               table_rows)
from repro.tcp import BSD_DERIVED, SUNOS_413

from conftest import emit


def run_both_variants():
    return {"acked": run_all("acked"), "unacked": run_all("unacked")}


def test_table4_zero_window(once_benchmark):
    by_variant = once_benchmark(run_both_variants)
    for variant, results in by_variant.items():
        emit(f"Table 4: TCP Zero Window Probe Results (probes {variant})",
             render_table("(receiver never consumes: window fills to zero)",
                          ["Implementation", "Results", "Comments"],
                          table_rows(results)))
        for name in BSD_DERIVED:
            assert abs(results[name].plateau - 60.0) < 1.5
            assert results[name].still_probing_at_end
            assert results[name].backoff_exponential
        solaris = results["Solaris 2.3"]
        assert abs(solaris.plateau - 56.0) < 1.5
        assert solaris.still_probing_at_end


def test_table4_unplug_coda(once_benchmark):
    result = once_benchmark(run_zero_window, SUNOS_413, variant="unplugged")
    emit("Table 4 coda: two days with the ethernet unplugged",
         f"probes before+during unplug: {result.probes_sent - result.probes_after_replug}\n"
         f"probes within 10 min of replug: {result.probes_after_replug}\n"
         f"connection still open: {result.still_open}")
    assert result.probes_after_replug > 0
    assert result.still_open
