"""Addressable simulation endpoints.

A :class:`Node` is a named, addressable machine in the virtual network.  It
owns whatever protocol stack the experiment attaches to it and exposes the
two primitives the network needs: a ``receive`` entry point for inbound
payloads and an outbound ``transmit`` delegating to the network.

Addresses are small integers standing in for IP addresses.  GMP leadership
is decided by lowest address, just as the paper's implementation used lowest
IP address.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.netsim.network import Network

ReceiveHook = Callable[[Any, int], None]


class Node:
    """A machine on the simulated network.

    Parameters
    ----------
    name:
        Human-readable hostname ("compsun1").
    address:
        Unique integer address.
    """

    def __init__(self, name: str, address: int):
        self.name = name
        self.address = address
        self.network: Optional["Network"] = None
        self._receive_hook: Optional[ReceiveHook] = None
        self._halted = False
        self.received_count = 0
        self.sent_count = 0

    @property
    def is_halted(self) -> bool:
        """True after :meth:`halt` (process crash failure model)."""
        return self._halted

    def on_receive(self, hook: ReceiveHook) -> None:
        """Install the inbound delivery hook: ``hook(payload, src_address)``."""
        self._receive_hook = hook

    def receive(self, payload: Any, src_address: int) -> None:
        """Called by the network when a payload arrives for this node."""
        if self._halted:
            return
        self.received_count += 1
        if self._receive_hook is not None:
            self._receive_hook(payload, src_address)

    def transmit(self, payload: Any, dst_address: int) -> bool:
        """Send a payload to another node through the network."""
        if self._halted:
            return False
        if self.network is None:
            raise RuntimeError(f"node {self.name} is not attached to a network")
        self.sent_count += 1
        return self.network.send(self.address, dst_address, payload)

    def halt(self) -> None:
        """Crash the node: it stops sending and receiving permanently.

        This implements the *process crash* failure model of the paper:
        "a process fails by halting prematurely and doing nothing from that
        point on".  Timers owned by higher layers are not cancelled here;
        a crashed node simply never reacts to them because protocol code is
        expected to check :attr:`is_halted` or be driven purely by receive
        events and its own transmissions.
        """
        self._halted = True

    def __repr__(self) -> str:
        state = "halted" if self._halted else "running"
        return f"Node({self.name}, addr={self.address}, {state})"
