"""Backend equivalence: the fabric changes where work runs, not what
it computes.

One sweep, three execution paths -- legacy in-process ``Campaign.run``,
the local backend writing through a fabric campaign directory, and the
sockets backend (real coordinator + worker processes) -- must agree on
``_stable`` results (configs, results, canonical traces, violation
fingerprints, virtual-time telemetry) and on stable-key scorecards,
across the real protocol rigs: every TCP vendor profile and every GMP
bug variant.  Each protocol runs the sockets backend once over all its
targets (one subprocess tree per protocol, not per case).
"""

import random

import pytest

from repro.analysis.export import VOLATILE_ATTRS, dump_trace
from repro.core.fabric import merge_campaign_dir
from repro.core.orchestrator import Campaign
from repro.obs.campaign_report import summarize_journal
from repro.oracle.fuzz import GMP_VARIANTS, pack_for, prefixed_fuzz_body
from repro.oracle.grammar import generate_script
from repro.tcp import VENDORS


def canon(trace) -> str:
    return dump_trace(trace, exclude_attrs=VOLATILE_ATTRS)


def _config(protocol: str, target: str, index: int, depth=None):
    script = generate_script(random.Random(index), protocol, index=index)
    config = {"protocol": protocol, "target": target,
              "script": script.source, "init_script": script.init,
              "direction": script.direction}
    if depth is not None:
        config["install_at"] = depth
    return config


def _stable(results):
    return [(r.config, r.result, canon(r.trace),
             [v.fingerprint() for v in (r.violations or [])],
             None if r.telemetry is None else
             (r.telemetry.events, r.telemetry.virtual_s,
              r.telemetry.trace_entries))
            for r in results]


def _sweep_configs(protocol):
    if protocol == "tcp":
        # depth 5.0 shares a mid-stream prefix per vendor
        return [_config("tcp", vendor, index, depth=5.0)
                for vendor in sorted(VENDORS) for index in range(2)]
    return [_config("gmp", variant, index)
            for variant in GMP_VARIANTS + ("fixed",)
            for index in range(2)]


def _scorecard(journal_or_dir, merged):
    source = (merge_campaign_dir(journal_or_dir) if merged
              else summarize_journal(journal_or_dir))
    return [row.stable_key() for row in source.runs]


@pytest.mark.parametrize("protocol", ("tcp", "gmp"))
def test_backends_agree_on_results_and_scorecards(tmp_path, protocol):
    configs = _sweep_configs(protocol)
    seed, oracle = 42, pack_for(protocol)

    legacy = Campaign(prefixed_fuzz_body, seed=seed).run(
        configs, oracle=oracle, journal=tmp_path / "legacy.jsonl")

    local_dir = tmp_path / "local"
    local = Campaign(prefixed_fuzz_body, seed=seed).run(
        configs, oracle=oracle, fabric_dir=local_dir)

    sockets_dir = tmp_path / "sockets"
    sockets = Campaign(prefixed_fuzz_body, seed=seed).run(
        configs, workers=2, oracle=oracle, backend="sockets",
        fabric_dir=sockets_dir)

    assert _stable(local) == _stable(legacy)
    assert _stable(sockets) == _stable(legacy)

    baseline = _scorecard(tmp_path / "legacy.jsonl", merged=False)
    assert len(baseline) == len(configs)
    assert _scorecard(local_dir, merged=True) == baseline
    assert _scorecard(sockets_dir, merged=True) == baseline


def test_sockets_resume_adds_nothing_to_the_scorecard(tmp_path):
    # resuming a completed sockets sweep re-reads the store: identical
    # results, identical merged scorecard, zero new rows
    configs = [_config("gmp", target, index)
               for target in ("self_death", "fixed")
               for index in range(2)]
    seed, oracle = 7, pack_for("gmp")
    fabric_dir = tmp_path / "fabric"

    def run():
        return Campaign(prefixed_fuzz_body, seed=seed).run(
            configs, workers=2, oracle=oracle, backend="sockets",
            fabric_dir=fabric_dir)

    first = run()
    scorecard = _scorecard(fabric_dir, merged=True)
    again = run()
    assert _stable(again) == _stable(first)
    assert _scorecard(fabric_dir, merged=True) == scorecard


def test_local_fabric_dir_warms_a_sockets_resume(tmp_path):
    # the promoted ResultStore is one address space: a local-backend
    # sweep through the campaign directory leaves the sockets backend
    # nothing to execute
    configs = [_config("gmp", "forward_param", index)
               for index in range(2)]
    seed, oracle = 3, pack_for("gmp")
    fabric_dir = tmp_path / "fabric"
    local = Campaign(prefixed_fuzz_body, seed=seed).run(
        configs, oracle=oracle, fabric_dir=fabric_dir)
    sockets = Campaign(prefixed_fuzz_body, seed=seed).run(
        configs, workers=2, oracle=oracle, backend="sockets",
        fabric_dir=fabric_dir)
    assert _stable(sockets) == _stable(local)
