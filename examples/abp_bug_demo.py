#!/usr/bin/env python3
"""Find a protocol bug with an auto-generated script campaign.

This example combines two of the paper's threads: the uniform treatment
of application-level protocols (§2.1) and the automatic generation of
test scripts from a protocol specification (§6, future work).

The target is the alternating-bit protocol in :mod:`repro.abp`.  Two
builds exist: a correct receiver, and one with a classic implementation
mistake (it ACKs correctly but does not check the sequence bit before
delivering).  On a clean network both behave identically.  We generate
the script campaign for the ABP spec and run every generated fault
against both builds: exactly the scripts that disturb the ACK path expose
the duplicate-delivery bug.

Run it::

    python examples/abp_bug_demo.py
"""

from repro.abp import AbpReceiver, AbpSender, abp_stubs
from repro.analysis.tables import render_table
from repro.core import PFILayer, make_env
from repro.core.genscripts import (MessageTypeSpec, ProtocolSpec,
                                   generate_campaign)
from repro.xkernel.stack import NodeAnchor, ProtocolStack

ABP_SPEC = ProtocolSpec(
    name="abp",
    message_types=(
        MessageTypeSpec("ABP_DATA", mutable_fields=(("bit", 1),)),
        MessageTypeSpec("ABP_ACK", mutable_fields=(("bit", 1),)),
    ))

PAYLOADS = [f"frame-{i}".encode() for i in range(6)]


def run_under_script(script, *, check_bit):
    """One trial: transfer six frames with one generated fault active."""
    env = make_env(seed=13)
    n1 = env.network.add_node("sender", 1)
    n2 = env.network.add_node("receiver", 2)
    stubs = abp_stubs()

    sender = AbpSender(env.scheduler, peer_address=2, trace=env.trace)
    sender_pfi = PFILayer("pfi_s", env.scheduler, stubs, trace=env.trace,
                          sync=env.sync, node="sender")
    ProtocolStack("s").build(sender, sender_pfi, NodeAnchor(n1, "anchor_s"))

    receiver = AbpReceiver(env.scheduler, peer_address=1,
                           check_bit=check_bit, trace=env.trace)
    receiver_pfi = PFILayer("pfi_r", env.scheduler, stubs, trace=env.trace,
                            sync=env.sync, node="receiver")
    ProtocolStack("r").build(receiver, receiver_pfi,
                             NodeAnchor(n2, "anchor_r"))

    # the campaign is written from the receiver's point of view: its send
    # path carries ACKs, its receive path carries DATA
    if script.direction == "send":
        receiver_pfi.set_send_filter(script.python_filter)
    else:
        receiver_pfi.set_receive_filter(script.python_filter)

    for payload in PAYLOADS:
        sender.send(payload)
    env.run_until(120.0)
    exactly_once = receiver.delivered == PAYLOADS
    return {
        "delivered_ok": exactly_once,
        "duplicates": receiver.duplicates_delivered,
        "extra": len(receiver.delivered) - len(PAYLOADS),
    }


def main():
    campaign = generate_campaign(ABP_SPEC, omission_rates=(0.3,),
                                 crash_after_messages=4)
    print(f"generated {len(campaign)} scripts from the ABP spec")
    print("running each against the correct and the buggy receiver...\n")

    rows = []
    finders = []
    for script in campaign:
        good = run_under_script(script, check_bit=True)
        bad = run_under_script(script, check_bit=False)
        exposes = good["delivered_ok"] and not bad["delivered_ok"]
        if exposes:
            finders.append(script.name)
        rows.append([script.name,
                     "ok" if good["delivered_ok"] else "degraded",
                     f"DUPLICATES x{bad['extra']}" if exposes else
                     ("ok" if bad["delivered_ok"] else "degraded"),
                     "<-- finds the bug" if exposes else ""])

    print(render_table(
        "auto-generated campaign vs. correct and buggy ABP receivers",
        ["Generated script", "Correct build", "Buggy build", ""], rows))

    print(f"\n{len(finders)} generated script(s) expose the "
          f"duplicate-delivery bug:")
    for name in finders:
        print(f"  - {name}")
    print("\nno script was written by hand: the campaign came straight "
          "from the protocol spec.")


if __name__ == "__main__":
    main()
