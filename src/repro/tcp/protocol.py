"""TCP as an x-Kernel protocol layer, plus the TCP packet stubs.

:class:`TCPProtocol` owns this host's connections and adapts them to the
stack: a connection's outbound segments become messages pushed down
(through any spliced PFI layer), and inbound messages are demultiplexed by
(local port, remote address, remote port) -- falling back to a listener
bound to the local port -- and fed to :meth:`TCPConnection.on_segment`.

:func:`tcp_stubs` builds the :class:`~repro.core.stubs.PacketStubs` for
TCP: recognition by flags/payload (SYN, SYNACK, ACK, DATA, FIN, RST) and
generators for the stateless probe messages a filter script may forge --
"when generating a spurious ACK message in TCP, no data structures need to
be updated".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.stubs import PacketStubs
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.tcp.connection import TCPConnection
from repro.tcp.segment import ACK, RST, SYN, Segment, classify
from repro.tcp.vendors import VendorProfile
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.netsim import kinds as K

ConnKey = Tuple[int, int, int]  # local port, remote addr, remote port


def _null_transmit(_seg: Segment) -> None:
    """Placeholder transmit for a connection not yet wired to a protocol."""


class _ConnTransmit:
    """Routes one connection's outgoing segments through its protocol.

    A class rather than ``lambda seg: protocol._transmit(conn, seg)`` so
    that a checkpointed connection deep-copies into its fork's protocol
    instead of leaking segments back into the original world (functions
    are atomic under ``copy.deepcopy``; instances follow the memo).
    """

    __slots__ = ("protocol", "conn")

    def __init__(self, protocol: "TCPProtocol", conn: TCPConnection):
        self.protocol = protocol
        self.conn = conn

    def __call__(self, seg: Segment) -> None:
        self.protocol._transmit(self.conn, seg)


class TCPProtocol(Protocol):
    """The TCP layer of one host's protocol stack."""

    def __init__(self, scheduler: Scheduler, profile: VendorProfile, *,
                 local_address: int, trace: Optional[TraceRecorder] = None,
                 name: str = "tcp", host: str = ""):
        super().__init__(name)
        self.scheduler = scheduler
        self.profile = profile
        self.local_address = local_address
        self.trace = trace
        self.host = host or name
        self._connections: Dict[ConnKey, TCPConnection] = {}
        self._listeners: Dict[int, TCPConnection] = {}
        self._next_iss = 1000
        # uid of the first wire message carrying each payload range, so a
        # retransmission records a lineage edge back to the original
        # transmission; only maintained while a trace is attached
        self._first_uids: Dict[Tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def open_connection(self, *, local_port: int, remote_address: int,
                        remote_port: int,
                        iss: Optional[int] = None) -> TCPConnection:
        """Create an active-open connection (does not send SYN yet)."""
        conn = self._make_connection(local_port, remote_address, remote_port,
                                     iss=iss)
        self._connections[(local_port, remote_address, remote_port)] = conn
        return conn

    def listen(self, local_port: int,
               iss: Optional[int] = None) -> TCPConnection:
        """Create a passive-open connection bound to a local port."""
        conn = self._make_connection(local_port, remote_address=None,
                                     remote_port=0, iss=iss)
        conn.listen()
        self._listeners[local_port] = conn
        return conn

    def _make_connection(self, local_port: int,
                         remote_address: Optional[int], remote_port: int,
                         iss: Optional[int]) -> TCPConnection:
        if iss is None:
            iss = self._next_iss
            self._next_iss += 100_000
        conn = TCPConnection(
            self.scheduler, self.profile,
            local_port=local_port, remote_port=remote_port,
            transmit=_null_transmit,  # replaced below
            trace=self.trace,
            name=f"{self.host}:{local_port}", iss=iss)
        conn.remote_address = remote_address
        conn._transmit = _ConnTransmit(self, conn)
        return conn

    def _transmit(self, conn: TCPConnection, seg: Segment) -> None:
        if conn.remote_address is None:
            return  # listener with no peer yet cannot transmit
        msg = Message(payload=b"", headers=[seg])
        msg.meta["dst"] = conn.remote_address
        msg.meta["src"] = self.local_address
        if self.trace is not None and seg.payload:
            # lineage edge: a re-sent payload range points back to the
            # uid that first carried it.  Recorded as its own additive
            # kind so existing tcp.* queries and entry ordering are
            # untouched.
            key = (conn.name, seg.seq, seg.seq + len(seg.payload))
            parent = self._first_uids.get(key)
            if parent is None:
                self._first_uids[key] = msg.uid
            else:
                self.trace.record(
                    K.TCP_LINEAGE, t=self.scheduler.now, node=self.host,
                    conn=conn.name, seq=seg.seq, uid=msg.uid,
                    parent=parent, relation="retransmit")
        self.send_down(msg)

    # ------------------------------------------------------------------
    # stack interface
    # ------------------------------------------------------------------

    def pop(self, msg: Message) -> None:
        header = msg.top_header
        if not isinstance(header, Segment):
            return
        seg = msg.pop_header()
        src_address = msg.meta.get("src")
        key = (seg.dst_port, src_address, seg.src_port)
        conn = self._connections.get(key)
        if conn is None:
            listener = self._listeners.get(seg.dst_port)
            if listener is not None and seg.is_syn:
                # bind the listener to this peer
                listener.remote_port = seg.src_port
                listener.remote_address = src_address
                self._connections[key] = listener
                del self._listeners[seg.dst_port]
                conn = listener
            elif listener is not None:
                conn = listener
        if conn is None:
            self._refuse(seg, src_address)
            return
        conn.on_segment(seg)

    def _refuse(self, seg: Segment, src_address: Optional[int]) -> None:
        """No connection for this segment: answer with a RST."""
        if seg.is_rst or src_address is None:
            return
        rst = Segment(src_port=seg.dst_port, dst_port=seg.src_port,
                      seq=seg.ack, ack=seg.end_seq, flags=RST | ACK,
                      window=0)
        msg = Message(payload=b"", headers=[rst])
        msg.meta["dst"] = src_address
        msg.meta["src"] = self.local_address
        self.send_down(msg)

    def connection(self, local_port: int, remote_address: int,
                   remote_port: int) -> Optional[TCPConnection]:
        """Look up an established connection."""
        return self._connections.get((local_port, remote_address, remote_port))


def tcp_stubs() -> PacketStubs:
    """Recognition/generation stubs for TCP segments."""
    stubs = PacketStubs()

    def recognize(msg: Message) -> Optional[str]:
        for header in reversed(msg.headers):
            if isinstance(header, Segment):
                return classify(header)
        return None

    stubs.register_recognizer(recognize)

    def gen_ack(*, src_port: int = 0, dst_port: int = 0, seq: int = 0,
                ack: int = 0, window: int = 4096, dst: Optional[int] = None,
                src: Optional[int] = None) -> Message:
        seg = Segment(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                      flags=ACK, window=window)
        msg = Message(payload=b"", headers=[seg])
        if dst is not None:
            msg.meta["dst"] = dst
        if src is not None:
            msg.meta["src"] = src
        return msg

    def gen_rst(*, src_port: int = 0, dst_port: int = 0, seq: int = 0,
                ack: int = 0, dst: Optional[int] = None,
                src: Optional[int] = None) -> Message:
        seg = Segment(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                      flags=RST | ACK, window=0)
        msg = Message(payload=b"", headers=[seg])
        if dst is not None:
            msg.meta["dst"] = dst
        if src is not None:
            msg.meta["src"] = src
        return msg

    def gen_syn(*, src_port: int = 0, dst_port: int = 0, seq: int = 0,
                window: int = 4096, dst: Optional[int] = None,
                src: Optional[int] = None) -> Message:
        seg = Segment(src_port=src_port, dst_port=dst_port, seq=seq, ack=0,
                      flags=SYN, window=window)
        msg = Message(payload=b"", headers=[seg])
        if dst is not None:
            msg.meta["dst"] = dst
        if src is not None:
            msg.meta["src"] = src
        return msg

    stubs.register_generator("ACK", gen_ack)
    stubs.register_generator("RST", gen_rst)
    stubs.register_generator("SYN", gen_syn)
    return stubs
