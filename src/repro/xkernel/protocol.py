"""Protocol layer base classes.

A layer receives messages from the layer above via :meth:`Protocol.push`
(headed for the wire) and from the layer below via :meth:`Protocol.pop`
(headed for the application).  The default implementations forward
unchanged, so a subclass only overrides the directions it cares about --
the PFI layer overrides both, a driver layer only originates pushes.

The ``above``/``below`` references are wired by
:class:`~repro.xkernel.stack.ProtocolStack`; layers must not assume who
their neighbours are, which is what makes splicing a PFI layer between any
two layers transparent to the target protocol.
"""

from __future__ import annotations

from typing import Optional

from repro.xkernel.message import Message


class Protocol:
    """Base class for a protocol stack layer."""

    def __init__(self, name: str):
        self.name = name
        self.above: Optional["Protocol"] = None
        self.below: Optional["Protocol"] = None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def push(self, msg: Message) -> None:
        """Handle a message travelling down (toward the network).

        Default: forward to the layer below unchanged.
        """
        self.send_down(msg)

    def pop(self, msg: Message) -> None:
        """Handle a message travelling up (toward the application).

        Default: forward to the layer above unchanged.
        """
        self.send_up(msg)

    def send_down(self, msg: Message) -> None:
        """Forward a message to the layer below (no-op at the bottom)."""
        if self.below is not None:
            self.below.push(msg)

    def send_up(self, msg: Message) -> None:
        """Forward a message to the layer above (no-op at the top)."""
        if self.above is not None:
            self.above.pop(msg)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attached(self) -> None:
        """Hook called once the layer's neighbours have been wired."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PassthroughProtocol(Protocol):
    """A layer that forwards in both directions while counting traffic.

    Useful as a stand-in target layer in tests and as a template for
    monitoring layers.
    """

    def __init__(self, name: str = "passthrough"):
        super().__init__(name)
        self.pushed_count = 0
        self.popped_count = 0

    def push(self, msg: Message) -> None:
        self.pushed_count += 1
        self.send_down(msg)

    def pop(self, msg: Message) -> None:
        self.popped_count += 1
        self.send_up(msg)
