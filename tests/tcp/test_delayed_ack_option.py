"""Unit tests for the RFC-1122 delayed-ACK receive option."""

import dataclasses


from repro.tcp.vendors import SUNOS_413, XKERNEL
from tests.tcp.conftest import ConnPair

DELACK = dataclasses.replace(XKERNEL, name="x-Kernel/delack",
                             delayed_ack=True, delayed_ack_timeout=0.2)


def delack_pair():
    return ConnPair(profile_a=SUNOS_413, profile_b=DELACK).establish()


def acks_from_b(pair):
    return [e for e in pair.trace.entries("tcp.transmit", conn="b")
            if e.get("purpose") in ("ack", "delayed_ack")]


class TestDelayedAck:
    def test_single_segment_ack_is_delayed(self):
        pair = delack_pair()
        start = pair.scheduler.now
        pair.a.send(b"x" * 100)
        pair.run(start + 0.05)
        assert acks_from_b(pair) == []          # held
        pair.run(start + 0.5)
        acks = acks_from_b(pair)
        assert len(acks) == 1
        assert acks[0].get("purpose") == "delayed_ack"
        assert acks[0].time - start >= 0.2

    def test_second_segment_flushes_ack_immediately(self):
        pair = delack_pair()
        start = pair.scheduler.now
        pair.a.send(b"x" * 512)
        pair.a.send(b"y" * 512)
        pair.run(start + 0.1)
        acks = acks_from_b(pair)
        assert len(acks) == 1                    # one ACK for both
        assert acks[0].get("purpose") == "ack"   # not timer-driven
        assert acks[0].get("ack") == pair.a.iss + 1 + 1024

    def test_data_in_reverse_direction_piggybacks(self):
        pair = delack_pair()
        start = pair.scheduler.now
        pair.a.send(b"request")
        pair.run(start + 0.05)
        pair.b.send(b"response")              # carries the ACK
        pair.run(start + 0.1)
        assert acks_from_b(pair) == []        # no pure ACK was needed
        assert pair.a.snd_una == pair.a.snd_nxt  # yet a was acked
        pair.run(start + 2.0)
        assert acks_from_b(pair) == []        # timer was cancelled

    def test_sender_not_stalled_by_delayed_acks(self):
        pair = delack_pair()
        payload = b"z" * (512 * 6)
        pair.a.send(payload)
        pair.run(pair.scheduler.now + 10.0)
        assert bytes(pair.b.delivered) == payload
        # no spurious retransmissions: 200 ms << the 1 s min RTO
        assert pair.trace.count("tcp.retransmit", conn="a") == 0

    def test_default_profiles_ack_immediately(self):
        pair = ConnPair().establish()
        start = pair.scheduler.now
        pair.a.send(b"immediate")
        pair.run(start + 0.05)
        assert len(acks_from_b(pair)) == 1

    def test_teardown_cancels_pending_delack(self):
        pair = delack_pair()
        pair.a.send(b"x")
        pair.run(pair.scheduler.now + 0.05)
        pair.b.abort(send_reset=False)
        pair.run(pair.scheduler.now + 1.0)
        assert acks_from_b(pair) == []
