"""Regenerates paper Table 7: GMP proclaim forwarding.

With the historical bug the leader answers the forwarder rather than the
proclaim originator, creating "a vicious cycle of PROCLAIM sending between
the forwarder ... and the leader" while the newcomer is never answered.
After the fix the newcomer joins normally.
"""

from repro.analysis.tables import render_table
from repro.experiments.gmp_proclaim import run_all

from conftest import emit


def test_table7_proclaim_forwarding(once_benchmark):
    results = once_benchmark(run_all)
    buggy, fixed = results["buggy"], results["fixed"]
    rows = [
        ["As delivered (reply-to-sender bug)",
         f"proclaim loop between leader and crown prince: "
         f"{buggy.leader_prince_proclaims} proclaims in the observation "
         f"window; the originator never received a response and was "
         f"never admitted",
         "there was a bug in the proclaim forwarding code"],
        ["After the fix (reply to originator)",
         f"leader answered the proclaim originator directly "
         f"({'admitted' if fixed.newcomer_admitted else 'NOT admitted'}); "
         f"{fixed.leader_prince_proclaims} leader/prince proclaims",
         "this bug was fixed"],
    ]
    emit("Table 7: Proclaim Forwarding Experiment",
         render_table("(newcomer's PROCLAIM to the leader is dropped; the "
                      "crown prince forwards it)",
                      ["Implementation", "Results", "Comments"], rows))

    assert buggy.proclaim_loop_detected
    assert not buggy.newcomer_admitted
    assert not fixed.proclaim_loop_detected
    assert fixed.newcomer_received_reply
    assert fixed.newcomer_admitted
