"""Tests for declarative fault schedules."""

import pytest

from repro.core import make_env
from repro.core.schedule import FaultSchedule
from repro.experiments.gmp_common import build_gmp_cluster


def make_schedule():
    env = make_env()
    return env, FaultSchedule(env.scheduler, trace=env.trace)


class TestSteps:
    def test_at_fires_at_absolute_time(self):
        env, schedule = make_schedule()
        fired = []
        schedule.at(5.0, "boom", lambda: fired.append(env.scheduler.now))
        schedule.arm()
        env.run_until(10.0)
        assert fired == [5.0]

    def test_after_fires_relative_to_arm(self):
        env, schedule = make_schedule()
        env.run_until(3.0)
        fired = []
        schedule.after(2.0, "later", lambda: fired.append(env.scheduler.now))
        schedule.arm()
        env.run_until(10.0)
        assert fired == [5.0]

    def test_every_repeats_until(self):
        env, schedule = make_schedule()
        fired = []
        schedule.every(1.0, "tick", lambda: fired.append(env.scheduler.now),
                       start=2.0, until=5.0)
        schedule.arm()
        env.run_until(20.0)
        assert fired == [2.0, 3.0, 4.0, 5.0]

    def test_every_without_until_runs_on(self):
        env, schedule = make_schedule()
        fired = []
        schedule.every(2.0, "tick", lambda: fired.append(1))
        schedule.arm()
        env.run_until(9.0)
        assert len(fired) == 5  # t=0,2,4,6,8

    def test_steps_in_the_past_fire_immediately_on_arm(self):
        env, schedule = make_schedule()
        env.run_until(10.0)
        fired = []
        schedule.at(5.0, "late", lambda: fired.append(env.scheduler.now))
        schedule.arm()
        env.run_until(11.0)
        assert fired == [10.0]

    def test_chaining_returns_self(self):
        env, schedule = make_schedule()
        assert schedule.at(1.0, "a", lambda: None) is schedule

    def test_arm_twice_rejected(self):
        env, schedule = make_schedule()
        schedule.arm()
        with pytest.raises(RuntimeError):
            schedule.arm()
        with pytest.raises(RuntimeError):
            schedule.at(1.0, "x", lambda: None)

    def test_bad_interval_rejected(self):
        env, schedule = make_schedule()
        with pytest.raises(ValueError):
            schedule.every(0.0, "x", lambda: None)

    def test_steps_recorded_in_trace(self):
        env, schedule = make_schedule()
        schedule.at(1.0, "partition", lambda: None)
        schedule.arm()
        env.run_until(2.0)
        entries = env.trace.entries("fault.step")
        assert entries and entries[0]["label"] == "partition"
        assert schedule.fired == ["partition"]

    def test_runbook_renders_timeline(self):
        env, schedule = make_schedule()
        schedule.at(10.0, "cut the link", lambda: None)
        schedule.every(5.0, "probe", lambda: None, start=12.0, until=30.0)
        text = schedule.runbook()
        assert "t=10.0s: cut the link" in text
        assert "every 5.0s until t=30.0s: probe" in text


class TestDrivingAnExperiment:
    def test_partition_heal_cycle_via_schedule(self):
        """Rebuild the Table 6 oscillation with a declarative schedule."""
        cluster = build_gmp_cluster([1, 2, 3, 4])
        cluster.start()
        net = cluster.env.network
        schedule = (FaultSchedule(cluster.scheduler, trace=cluster.trace)
                    .at(15.0, "partition", lambda: net.partition([1, 2],
                                                                 [3, 4]))
                    .at(45.0, "heal", net.heal))
        schedule.arm()
        cluster.run_until(40.0)
        assert cluster.daemons[1].view.members == (1, 2)
        assert cluster.daemons[3].view.members == (3, 4)
        cluster.run_until(90.0)
        assert cluster.all_in_one_group()
        assert schedule.fired == ["partition", "heal"]
