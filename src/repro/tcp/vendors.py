"""Vendor behaviour profiles.

The paper tested four vendor TCPs -- SunOS 4.1.3, AIX 3.2.3, NeXT Mach,
and Solaris 2.3 -- and attributed every observed difference to a small set
of implementation choices.  A :class:`VendorProfile` encodes those choices
as data; the same :class:`~repro.tcp.connection.TCPConnection` machinery
runs all four, so every behavioural difference in the reproduced tables
flows from profile parameters, not per-vendor code paths.

Parameter provenance (paper section 4.1):

- **retransmission**: BSD-derived stacks retransmit a segment 12 times,
  back off exponentially to a 64 s cap, and send a RST when giving up;
  Solaris retransmits 9 times (a *global* fault counter, the discovery of
  Experiment 2), starts from a ~330 ms floor, and closes without a RST.
- **RTT estimation**: the BSD stacks follow Jacobson + Karn; Solaris "did
  not use Jacobson's algorithm, or did not select RTT measurements in the
  same way" -- modelled as a weak-gain estimator that keeps under-
  estimating a suddenly slow network (``uses_jacobson=False``).
- ``var_floor_frac`` models the per-vendor coarse-timer floor on the RTT
  variance term; it is what spreads the first retransmission of the
  delayed-ACK experiment to ~6.5 s (SunOS), ~8 s (AIX), ~5 s (NeXT) while
  all three use the same algorithm.
- **keep-alive**: BSD probes at a 7200 s threshold, retransmits dropped
  probes 8 times at fixed 75 s intervals, then RSTs; SunOS's probe carries
  one garbage byte, AIX/NeXT's none.  Solaris probes at 6752 s (the paper
  attributes the 6752/7200 == 56/60 ratio to a mis-calibrated clock tick),
  retransmits with exponential backoff 7 times, then closes silently.
- **zero-window probing**: persist interval doubles to a 60 s cap (56 s on
  Solaris -- same skew) and continues forever whether or not probes are
  ACKed.
- **reordering**: all four queue out-of-order segments per RFC-1122.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class VendorProfile:
    """Behavioural constants for one TCP implementation."""

    name: str

    # retransmission machinery
    min_rto: float = 1.0
    max_rto: float = 64.0
    initial_rto: float = 3.0
    timer_tick: float = 0.5
    max_retransmits: int = 12
    global_fault_threshold: Optional[int] = None
    reset_on_timeout: bool = True

    # RTT estimation
    uses_jacobson: bool = True
    rtt_gain: float = 0.125        # Jacobson g
    var_gain: float = 0.25         # Jacobson h
    rto_k: float = 4.0             # Jacobson k (rttvar multiplier)
    var_floor_frac: float = 0.29   # per-vendor rttvar floor, fraction of srtt
    naive_gain: float = 0.017      # EWMA gain when uses_jacobson=False
    naive_timeout_resets_to_srtt: bool = False

    # keep-alive
    ka_idle: float = 7200.0
    ka_probe_interval: float = 75.0
    ka_probe_retransmits: int = 8
    ka_backoff: bool = False
    ka_garbage_byte: bool = False
    ka_reset_on_fail: bool = True

    # zero-window persist probing
    persist_initial: float = 5.0
    persist_max: float = 60.0

    # receive side
    queue_out_of_order: bool = True
    mss: int = 512
    recv_buffer: int = 4096
    #: RFC-1122 delayed acknowledgements: hold a pure ACK up to
    #: ``delayed_ack_timeout`` hoping to piggyback or coalesce ("the
    #: receiving TCP was using delayed ACKs", paper §4.1).  Off by
    #: default: the paper's experiments ACK immediately.
    delayed_ack: bool = False
    delayed_ack_timeout: float = 0.2

    #: Tahoe-style congestion control (slow start, congestion avoidance,
    #: fast retransmit on three duplicate ACKs).  The 1994 stacks had it;
    #: it is off by default here because the paper's experiments are
    #: flow-control and timer driven and never exercise it.
    congestion_control: bool = False
    initial_ssthresh: int = 65535
    dupack_threshold: int = 3


SUNOS_413 = VendorProfile(
    name="SunOS 4.1.3",
    var_floor_frac=0.29,
    ka_garbage_byte=True,
)

AIX_323 = VendorProfile(
    name="AIX 3.2.3",
    var_floor_frac=0.42,
    ka_garbage_byte=False,
)

NEXT_MACH = VendorProfile(
    name="NeXT Mach",
    var_floor_frac=0.17,
    ka_garbage_byte=False,
)

SOLARIS_23 = VendorProfile(
    name="Solaris 2.3",
    min_rto=0.330,
    initial_rto=0.330,
    timer_tick=0.055,
    max_retransmits=12,            # never reached: the global counter fires first
    global_fault_threshold=9,
    reset_on_timeout=False,
    uses_jacobson=False,
    naive_timeout_resets_to_srtt=True,
    ka_idle=6752.0,
    ka_probe_retransmits=7,
    ka_backoff=True,
    ka_reset_on_fail=False,
    persist_max=56.0,
)

#: The reference stack running on the x-Kernel test machine itself.
XKERNEL = VendorProfile(
    name="x-Kernel",
    var_floor_frac=0.25,
)

#: The four vendor implementations of the paper, in its reporting order.
VENDORS: Dict[str, VendorProfile] = {
    "SunOS 4.1.3": SUNOS_413,
    "AIX 3.2.3": AIX_323,
    "NeXT Mach": NEXT_MACH,
    "Solaris 2.3": SOLARIS_23,
}

#: The BSD-derived subset ("The SunOS, AIX, and NeXT Mach implementations
#: were all very similar, and seemed to have been based on the same
#: release of BSD unix").
BSD_DERIVED = ("SunOS 4.1.3", "AIX 3.2.3", "NeXT Mach")
