"""Unit tests for the extended stdlib: switch, lsort, lreplace, lrepeat."""

import pytest

from repro.core.tclish import Interp, TclError


@pytest.fixture
def interp():
    return Interp()


class TestSwitch:
    def test_exact_match(self, interp):
        result = interp.eval("""
        switch ACK {
            ACK  { set r ack }
            NACK { set r nack }
        }""")
        assert result == "ack"

    def test_default_branch(self, interp):
        result = interp.eval("""
        switch OTHER {
            ACK { set r ack }
            default { set r fallback }
        }""")
        assert result == "fallback"

    def test_no_match_no_default(self, interp):
        assert interp.eval("switch X { A {set r a} }") == ""

    def test_glob_mode(self, interp):
        result = interp.eval("""
        switch -glob "MEMBERSHIP_CHANGE" {
            MEMBER* { set r membership }
            default { set r other }
        }""")
        assert result == "membership"

    def test_fallthrough_dash(self, interp):
        result = interp.eval("""
        switch B {
            A - B - C { set r abc }
            default { set r other }
        }""")
        assert result == "abc"

    def test_value_substituted(self, interp):
        interp.eval("set t ACK")
        assert interp.eval(
            "switch $t { ACK {set r 1} default {set r 0} }") == "1"

    def test_inline_pairs_form(self, interp):
        assert interp.eval("switch b a {set r 1} b {set r 2}") == "2"

    def test_odd_pairs_rejected(self, interp):
        with pytest.raises(TclError):
            interp.eval("switch x { A }")


class TestLsort:
    def test_default_lexicographic(self, interp):
        assert interp.eval("lsort {pear apple orange}") == \
            "apple orange pear"

    def test_integer_sort(self, interp):
        assert interp.eval("lsort -integer {10 2 33 4}") == "2 4 10 33"

    def test_real_sort(self, interp):
        assert interp.eval("lsort -real {1.5 0.2 10.0}") == "0.2 1.5 10.0"

    def test_decreasing(self, interp):
        assert interp.eval("lsort -integer -decreasing {1 3 2}") == "3 2 1"

    def test_unique(self, interp):
        assert interp.eval("lsort -unique {b a b c a}") == "a b c"

    def test_empty_list(self, interp):
        assert interp.eval("lsort {}") == ""


class TestLreplace:
    def test_replace_middle(self, interp):
        assert interp.eval("lreplace {a b c d} 1 2 X Y Z") == "a X Y Z d"

    def test_delete_range(self, interp):
        assert interp.eval("lreplace {a b c d} 1 2") == "a d"

    def test_end_index(self, interp):
        assert interp.eval("lreplace {a b c} end end Z") == "a b Z"


class TestLrepeat:
    def test_repeat(self, interp):
        assert interp.eval("lrepeat 3 x y") == "x y x y x y"

    def test_zero(self, interp):
        assert interp.eval("lrepeat 0 x") == ""

    def test_negative_rejected(self, interp):
        with pytest.raises(TclError):
            interp.eval("lrepeat -1 x")


class TestSwitchInFilterIdiom:
    def test_message_dispatch_idiom(self, interp):
        """The natural filter style switch enables."""
        dropped = []
        delayed = []
        interp.register_command("xDrop", lambda i, a: dropped.append(1) or "")
        interp.register_command("xDelay",
                                lambda i, a: delayed.append(a[0]) or "")
        script = """
        switch $type {
            ACK       { xDrop }
            HEARTBEAT { xDelay 2.0 }
            default   { }
        }
        """
        for msg_type in ("ACK", "HEARTBEAT", "DATA", "ACK"):
            interp.set_var("type", msg_type)
            interp.eval(script)
        assert dropped == [1, 1]
        assert delayed == ["2.0"]
