"""Probability distribution utilities for probabilistic fault injection.

The paper: "a set of procedures which allow the user to generate
probability distributions.  For example, a call such as
``dst_normal mean var`` will produce numbers with a normal distribution
around mean with variance var.  In this way, it is possible for the script
writer to perform actions on messages in a probabilistic manner."

:class:`DistributionSet` wraps a seeded PRNG and exposes the draw functions
under their paper-style names.  Each PFI layer owns one, derived
deterministically from the experiment seed and the node name, so runs are
reproducible while nodes stay decorrelated.
"""

from __future__ import annotations

import math
import random
from typing import Sequence


class DistributionSet:
    """Seeded random draws for filter scripts.

    ``labels`` records the derivation path from the experiment seed (see
    :meth:`repro.core.orchestrator.ExperimentEnv.dist`) and ``draws``
    counts stream consumption; together they are what lets the
    checkpoint layer re-derive a forked world's streams under a new run
    seed -- and refuse to, once a stream has already been drawn from.
    """

    def __init__(self, seed: int = 0, *, labels: "tuple | None" = None):
        self._seed = seed
        self.labels = tuple(labels) if labels is not None else None
        self._rng = random.Random(seed)
        self.draws = 0

    @property
    def rng(self) -> random.Random:
        """The underlying PRNG (for APIs that want a random.Random).

        Draws made directly on it bypass the ``draws`` counter, so
        prefer the ``dst_*`` wrappers inside checkpointable rigs.
        """
        return self._rng

    @property
    def seed(self) -> int:
        """The seed this stream was (re)built from."""
        return self._seed

    def reseed(self, seed: int) -> None:
        """Restart the stream from a new seed (checkpoint restore path)."""
        self._seed = seed
        self._rng = random.Random(seed)
        self.draws = 0

    def __deepcopy__(self, memo):
        # a Mersenne state is a 625-int tuple that generic deepcopy walks
        # element by element; it is immutable, so a forked world can
        # share it through getstate/setstate -- this one trick is most of
        # the difference between a ~5ms and a ~1ms checkpoint fork
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        clone._seed = self._seed
        clone.labels = self.labels
        clone.draws = self.draws
        clone._rng = random.Random.__new__(random.Random)
        clone._rng.setstate(self._rng.getstate())
        return clone

    def dst_normal(self, mean: float, var: float) -> float:
        """Normal draw with the paper's (mean, variance) signature."""
        if var < 0:
            raise ValueError("variance must be non-negative")
        self.draws += 1
        return self._rng.gauss(mean, math.sqrt(var))

    def dst_uniform(self, low: float, high: float) -> float:
        """Uniform draw in [low, high]."""
        self.draws += 1
        return self._rng.uniform(low, high)

    def dst_exponential(self, rate: float) -> float:
        """Exponential draw with the given rate (lambda)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.draws += 1
        return self._rng.expovariate(rate)

    def dst_bernoulli(self, p: float) -> bool:
        """True with probability p."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be within [0, 1], got {p}")
        self.draws += 1
        return self._rng.random() < p

    def chance(self, p: float) -> bool:
        """Alias of :meth:`dst_bernoulli` reading better in scripts."""
        return self.dst_bernoulli(p)

    def dst_geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials until the first success (>= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"probability must be within (0, 1], got {p}")
        count = 1
        self.draws += 1
        while self._rng.random() >= p:
            count += 1
            self.draws += 1
        return count

    def choice(self, items: Sequence):
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        self.draws += 1
        return self._rng.choice(items)

    def fork(self, label: str) -> "DistributionSet":
        """Derive an independent, deterministic child stream."""
        self.draws += 1
        return DistributionSet(hash((self._rng.random(), label)) & 0x7FFFFFFF)


def derive_seed(base_seed: int, *labels) -> int:
    """Stable seed derivation from a base seed and string/int labels."""
    value = base_seed & 0xFFFFFFFF
    for label in labels:
        for ch in str(label):
            value = (value * 1000003 + ord(ch)) & 0xFFFFFFFF
    return value
