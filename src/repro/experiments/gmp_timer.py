"""Experiment GMP-4 (paper Table 8): the timer test.

"It is important that during some phases of the protocol, all timers be
unset.  ...  In the test, the receive filter for compsun1 was configured
such that it was allowed to join one group.  After that, when it received
a second MEMBERSHIP_CHANGE (when another group was formed) it started
dropping all incoming COMMIT and heartbeat packets."

With the inverted-unregister bug, entering IN_TRANSITION unsets only the
*first* heartbeat-expect timer instead of all of them, so compsun1 "timed
out waiting for a heartbeat message from the leader" while in a state
where no such timer should exist.  Fixed, all expect timers are unset and
compsun1 simply waits out its membership-change timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import ScriptContext
from repro.experiments.gmp_common import build_gmp_cluster
from repro.gmp import BugFlags, FIXED

WORLD = [1, 2, 3]
LEADER = 1
THIRD_MACHINE = 2
COMPSUN1 = 3


@dataclass
class TimerTestResult:
    """One Table 8 row (buggy or fixed)."""

    bugs_on: bool
    second_change_received: bool
    spurious_heartbeat_timeout: bool
    timers_armed_in_transition: List[str]
    mc_timer_survived: bool


def drop_after_second_change():
    """compsun1's receive filter for this experiment."""
    def receive_filter(ctx: ScriptContext) -> None:
        kind = ctx.msg_type()
        if kind == "MEMBERSHIP_CHANGE":
            changes = ctx.state.get("changes", 0) + 1
            ctx.state["changes"] = changes
            return
        if ctx.state.get("changes", 0) >= 2 and kind in ("COMMIT",
                                                         "HEARTBEAT"):
            ctx.log(f"{kind} dropped after second membership change")
            ctx.drop()
    return receive_filter


class _TransitionSampler:
    """Record a daemon's armed timers the first time it sits IN_TRANSITION.

    A callable class rather than a nested closure: scheduled callbacks
    must survive a world deepcopy (see ``repro.core.checkpoint``), and
    the determinism pass of ``repro.staticcheck`` rejects closures on
    the scheduler heap for the same reason.
    """

    def __init__(self, daemon, snapshot: List[str]):
        self._daemon = daemon
        self._snapshot = snapshot

    def __call__(self) -> None:
        if self._daemon.status == "IN_TRANSITION" and not self._snapshot:
            self._snapshot.extend(
                f"{kind}/{key}"
                for kind in self._daemon.timers.armed_kinds()
                for key in self._daemon.timers.armed_keys(kind))


def execute_timer_test(*, bugs_on: bool, seed: int = 0):
    """Drive Table 8; returns ``(cluster, start, armed_snapshot)``."""
    flags = {COMPSUN1: BugFlags(inverted_timer_unregister=True)
             if bugs_on else FIXED}
    cluster = build_gmp_cluster(WORLD, bugs=flags, seed=seed)
    compsun1 = cluster.daemons[COMPSUN1]
    compsun1_pfi = cluster.pfis[COMPSUN1]
    compsun1_pfi.set_receive_filter(drop_after_second_change())

    # compsun1 and the leader form the initial group (first change)
    cluster.start(LEADER, COMPSUN1)
    cluster.run_until(8.0)
    assert compsun1.view.members == (LEADER, COMPSUN1)

    # a third machine triggers the second membership change
    cluster.start(THIRD_MACHINE)
    start = cluster.scheduler.now

    # sample compsun1's armed timers the moment it sits IN_TRANSITION
    armed_snapshot: List[str] = []
    sampler = _TransitionSampler(compsun1, armed_snapshot)
    for tick in range(1, 40):
        cluster.scheduler.schedule(tick * 0.1, sampler)
    cluster.run_until(start + 10.0)
    return cluster, start, armed_snapshot


def run_timer_test(*, bugs_on: bool, seed: int = 0) -> TimerTestResult:
    """Run Table 8 with the inverted-unregister bug on or off."""
    cluster, _start, armed_snapshot = execute_timer_test(
        bugs_on=bugs_on, seed=seed)
    trace = cluster.trace
    return TimerTestResult(
        bugs_on=bugs_on,
        second_change_received=trace.count("gmp.in_transition",
                                           node=COMPSUN1) >= 2,
        spurious_heartbeat_timeout=trace.count("gmp.spurious_timeout",
                                               node=COMPSUN1) > 0,
        timers_armed_in_transition=armed_snapshot,
        mc_timer_survived=any(s.startswith("mc_timeout")
                              for s in armed_snapshot),
    )


def run_all(seed: int = 0) -> Dict[str, TimerTestResult]:
    """Table 8: buggy and fixed."""
    return {
        "buggy": run_timer_test(bugs_on=True, seed=seed),
        "fixed": run_timer_test(bugs_on=False, seed=seed),
    }


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import gmp_pack
    return gmp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite.

    Only the fixed variant: the buggy run deliberately violates
    GMP-TIMER and belongs to the known-bug detection tests.
    """
    yield ("timer/unregister_fixed",
           execute_timer_test(bugs_on=False, seed=seed)[0].trace)
