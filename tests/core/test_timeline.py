"""Tests for the message-sequence diagram renderer."""

import pytest

from repro.analysis.timeline import SequenceDiagram, gmp_sequence
from repro.experiments.gmp_common import build_gmp_cluster


class TestSequenceDiagram:
    def make(self):
        return SequenceDiagram(["A", "B"])

    def test_requires_two_participants(self):
        with pytest.raises(ValueError):
            SequenceDiagram(["solo"])

    def test_unknown_participant_rejected(self):
        diagram = self.make()
        with pytest.raises(KeyError):
            diagram.add(0.0, "A", "C", "m")

    def test_forward_arrow(self):
        diagram = self.make()
        diagram.add(0.0, "A", "B", "m1")
        text = diagram.render()
        assert "m1" in text
        assert ">" in text

    def test_reverse_arrow(self):
        diagram = self.make()
        diagram.add(0.0, "B", "A", "ack")
        assert "<" in diagram.render()

    def test_lost_message_marked(self):
        diagram = self.make()
        diagram.add(0.0, "A", "B", "gone", lost=True)
        text = diagram.render()
        assert "x" in text
        assert ">" not in text.splitlines()[-1]

    def test_self_message(self):
        diagram = self.make()
        diagram.add(1.0, "A", "A", "timer")
        assert "self: timer" in diagram.render()

    def test_events_sorted_by_time(self):
        diagram = self.make()
        diagram.add(2.0, "A", "B", "second")
        diagram.add(1.0, "A", "B", "first")
        lines = diagram.render().splitlines()
        assert "first" in lines[1]
        assert "second" in lines[2]

    def test_max_events_truncates_with_note(self):
        diagram = self.make()
        for i in range(10):
            diagram.add(float(i), "A", "B", f"m{i}")
        text = diagram.render(max_events=3)
        assert "7 more message" in text
        assert "m9" not in text

    def test_long_label_truncated(self):
        diagram = self.make()
        diagram.add(0.0, "A", "B", "A_VERY_LONG_MESSAGE_TYPE_NAME_INDEED")
        text = diagram.render()
        assert "..." in text

    def test_three_lanes_positioning(self):
        diagram = SequenceDiagram(["x", "y", "z"], lane_width=20)
        diagram.add(0.0, "x", "y", "near")
        diagram.add(1.0, "x", "z", "far")
        near_line, far_line = diagram.render().splitlines()[1:3]
        assert len(far_line) > len(near_line)

    def test_header_contains_participants(self):
        diagram = self.make()
        header = diagram.render().splitlines()[0]
        assert "A" in header and "B" in header


class TestGmpExtraction:
    def test_extracts_join_handshake(self):
        cluster = build_gmp_cluster([1, 2])
        cluster.start()
        cluster.run_until(2.0)
        diagram = gmp_sequence(cluster.trace, [1, 2],
                               kinds={"PROCLAIM", "JOIN",
                                      "MEMBERSHIP_CHANGE", "ACK", "COMMIT"})
        text = diagram.render()
        assert "JOIN" in text
        assert "COMMIT" in text
        assert "HEARTBEAT" not in text  # filtered out

    def test_lost_messages_marked_in_extraction(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start(1, 2)
        cluster.run_until(5.0)
        # drop COMMITs to 3 so extraction sees unmatched sends
        from repro.core.faults import drop_by_type
        cluster.pfis[3].set_receive_filter(drop_by_type("COMMIT"))
        cluster.start(3)
        cluster.run_until(15.0)
        diagram = gmp_sequence(cluster.trace, [1, 2, 3], kinds={"COMMIT"})
        lost = [e for e in diagram.events if e.lost and e.dst == "gmd3"]
        assert lost

    def test_time_window_filter(self):
        cluster = build_gmp_cluster([1, 2])
        cluster.start()
        cluster.run_until(10.0)
        diagram = gmp_sequence(cluster.trace, [1, 2],
                               kinds={"HEARTBEAT"}, start=5.0, end=6.0)
        assert diagram.events
        assert all(5.0 <= e.time <= 6.0 for e in diagram.events)
