"""Chrome-trace / Perfetto export of experiment traces.

Converts a :class:`~repro.netsim.trace.TraceRecorder` (live or loaded
from a JSON-lines archive) into the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: open the JSON, and the
run becomes a zoomable timeline with one process row per node and one
thread row per direction/subsystem.

Mapping:

- virtual seconds -> microsecond timestamps (``ts``);
- a node (``node`` attr, falling back to ``conn``, else ``run``) -> a
  ``pid`` with a ``process_name`` metadata record;
- the entry's ``direction`` attr (else its kind prefix, "tcp", "gmp",
  ...) -> a ``tid`` with a ``thread_name`` record;
- ``pfi.delay`` -> a complete span (``ph: "X"``) of the delay duration;
- ``pfi.hold`` ... ``pfi.release`` of the same uid -> a complete span
  from park to re-emission;
- everything else -> a thread-scoped instant event (``ph: "i"``).

All attribute payloads ride along under ``args`` (JSON-sanitized), so
clicking any event in the viewer shows the original trace entry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.analysis.export import _jsonable
from repro.netsim.trace import TraceEntry

_US = 1_000_000  # virtual seconds -> trace microseconds


def _lane(entry: TraceEntry) -> Tuple[str, str]:
    """(process, thread) placement for one entry."""
    node = entry.get("node")
    if node is None:
        node = entry.get("conn")
    if node is None:
        node = "run"
    direction = entry.get("direction")
    if direction is None:
        direction = entry.kind.split(".", 1)[0]
    return str(node), str(direction)


def chrome_trace(trace: Iterable[TraceEntry], *,
                 title: str = "repro run") -> Dict[str, Any]:
    """Build the Trace Event Format dict for a trace."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    open_holds: Dict[Any, Tuple[TraceEntry, int, int]] = {}

    def lane_ids(entry: TraceEntry) -> Tuple[int, int]:
        process, thread = _lane(entry)
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": process}})
        key = (process, thread)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": thread}})
        return pid, tid

    def args_of(entry: TraceEntry) -> Dict[str, Any]:
        return {k: _jsonable(v) for k, v in entry.attrs.items()}

    for entry in trace:
        pid, tid = lane_ids(entry)
        ts = entry.time * _US
        if entry.kind == "pfi.delay":
            events.append({"ph": "X", "name": f"delay uid={entry.get('uid')}",
                           "cat": "pfi", "ts": ts,
                           "dur": float(entry.get("seconds", 0.0)) * _US,
                           "pid": pid, "tid": tid, "args": args_of(entry)})
            continue
        if entry.kind == "pfi.hold":
            open_holds[entry.get("uid")] = (entry, pid, tid)
            continue
        if entry.kind == "pfi.release":
            held = open_holds.pop(entry.get("uid"), None)
            if held is not None:
                hold_entry, hold_pid, hold_tid = held
                events.append({
                    "ph": "X",
                    "name": f"hold uid={entry.get('uid')} "
                            f"tag={entry.get('tag')}",
                    "cat": "pfi", "ts": hold_entry.time * _US,
                    "dur": (entry.time - hold_entry.time) * _US,
                    "pid": hold_pid, "tid": hold_tid,
                    "args": args_of(entry)})
                continue
            # release with no recorded hold: fall through as an instant
        events.append({"ph": "i", "name": entry.kind,
                       "cat": entry.kind.split(".", 1)[0], "ts": ts,
                       "s": "t", "pid": pid, "tid": tid,
                       "args": args_of(entry)})

    # messages still parked when the run ended: zero-length markers
    for hold_entry, pid, tid in open_holds.values():
        events.append({"ph": "i",
                       "name": f"held (never released) "
                               f"uid={hold_entry.get('uid')}",
                       "cat": "pfi", "ts": hold_entry.time * _US, "s": "t",
                       "pid": pid, "tid": tid, "args": args_of(hold_entry)})

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"title": title,
                          "generator": "repro.obs.chrometrace"}}


def dump_chrome_trace(trace: Iterable[TraceEntry], *,
                      title: str = "repro run", indent: int = 0) -> str:
    """The Trace Event Format JSON text for a trace."""
    return json.dumps(chrome_trace(trace, title=title), sort_keys=True,
                      indent=indent or None)


def journal_chrome_trace(replay: Any, *,
                         title: str = "campaign journal"
                         ) -> Dict[str, Any]:
    """Trace Event Format view of a campaign journal replay.

    The sweep becomes one timeline process: campaign phases (lint
    preflight, checkpoint capture, dispatch, merge) map to complete
    spans on a ``phases`` thread, ``campaign.run_start`` ..
    ``campaign.run_end`` pairs to spans on a ``runs`` thread (matched by
    run index, falling back to an instant for a run_end with no
    recorded start -- e.g. cached runs), and everything else to instant
    events.  Journal timestamps are wall seconds since journal open,
    exported as microseconds like the virtual-time traces.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "campaign"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
         "args": {"name": "phases"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
         "args": {"name": "runs"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 3,
         "args": {"name": "lifecycle"}},
    ]
    open_phases: Dict[str, Any] = {}
    open_runs: Dict[Any, Any] = {}
    last_t = 0.0
    for event in replay.events:
        ts = event.t * _US
        last_t = event.t
        data = {k: _jsonable(v) for k, v in event.data.items()}
        if event.kind == "campaign.phase_start":
            open_phases[str(event.get("name", "?"))] = event
        elif event.kind == "campaign.phase_end":
            name = str(event.get("name", "?"))
            started = open_phases.pop(name, None)
            start_ts = started.t * _US if started is not None else ts
            events.append({"ph": "X", "name": name, "cat": "campaign",
                           "ts": start_ts, "dur": ts - start_ts,
                           "pid": 1, "tid": 1, "args": data})
        elif event.kind == "campaign.run_start":
            open_runs[event.get("index")] = event
        elif event.kind == "campaign.run_end":
            started = open_runs.pop(event.get("index"), None)
            name = str(event.get("label", event.get("case",
                                                    f"run {event.get('index')}")))
            if started is not None:
                start_ts = started.t * _US
                events.append({"ph": "X", "name": name, "cat": "campaign",
                               "ts": start_ts, "dur": ts - start_ts,
                               "pid": 1, "tid": 2, "args": data})
            else:
                events.append({"ph": "i", "name": name, "cat": "campaign",
                               "ts": ts, "s": "t", "pid": 1, "tid": 2,
                               "args": data})
        else:
            events.append({"ph": "i", "name": event.kind, "cat": "campaign",
                           "ts": ts, "s": "t", "pid": 1, "tid": 3,
                           "args": data})
    # a killed sweep leaves phases/runs open: close them at the last
    # recorded instant so the torn flight still renders
    for name, started in open_phases.items():
        events.append({"ph": "X", "name": f"{name} (unclosed)",
                       "cat": "campaign", "ts": started.t * _US,
                       "dur": max(0.0, (last_t - started.t) * _US),
                       "pid": 1, "tid": 1, "args": {}})
    for index, started in open_runs.items():
        events.append({"ph": "i", "name": f"run {index} (no run_end)",
                       "cat": "campaign", "ts": started.t * _US, "s": "t",
                       "pid": 1, "tid": 2, "args": {}})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"title": title,
                          "generator": "repro.obs.chrometrace"}}
