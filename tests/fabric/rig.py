"""The fabric chaos rig: a slow, deterministic sweep and kill helpers.

The chaos tests (``test_chaos.py``) need a sweep whose wall-clock
duration they control -- long enough that a SIGKILL lands *mid-sweep*
with configurations still pending -- while its results stay perfectly
deterministic on stable keys.  :func:`chaos_body` burns a configurable
amount of real time per configuration (invisible to stable keys, which
are wall-clock-free) around a tiny simulated workload.

``python -m tests.fabric.rig --dir D --count N ...`` runs one sockets
sweep attempt over that body in a subprocess, which is what makes the
coordinator itself killable; rerunning the identical command is a
resume (the spec digest matches, the store already holds the completed
rows).  Exit status: 0 completed, 3 aborted resumable
(``workers_lost``), 1 anything else.

The helpers here are the rig's observation surface: ``state.json``
(written atomically by the coordinator) names the victims to SIGKILL,
and :func:`run_end_count` measures sweep progress by counting durable
``campaign.run_end`` journal records -- which is how kill offsets are
fuzzed without any timing assumptions.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.core.fabric import SweepSpec, merge_campaign_dir
from repro.core.orchestrator import Campaign
from repro.netsim import kinds as K
from repro.obs.campaign_report import summarize_journal

REPO_ROOT = Path(__file__).resolve().parents[2]

DEFAULT_WORK_MS = 40.0
DEFAULT_SEED = 1995


def chaos_body(env, config):
    """Deterministic on stable keys; real-time cost set by ``RIG_WORK_MS``.

    The simulated part (a short tick chain) gives every row the same
    trace/telemetry shape a real experiment body has; the ``sleep``
    only stretches wall time so the chaos tests can land a SIGKILL
    mid-sweep.  The knob is an environment variable, *not* a config
    key: configs (and therefore row labels, store keys and the spec
    digest) must be identical between the slow chaos sweep and the
    fast serial oracle it is compared against.
    """
    time.sleep(float(os.environ.get("RIG_WORK_MS", "0")) / 1000.0)
    state = {"ticks": 0}

    def tick():
        state["ticks"] += 1
        if state["ticks"] < int(config.get("ticks", 3)):
            env.scheduler.schedule(1.0, tick)

    env.scheduler.schedule(1.0, tick)
    env.scheduler.run()
    return {"item": config["item"], "ticks": state["ticks"]}


def make_configs(count: int) -> List[Dict[str, Any]]:
    return [{"item": index, "ticks": 3} for index in range(count)]


def make_spec(count: int, *, seed: int = DEFAULT_SEED) -> SweepSpec:
    return SweepSpec(body=chaos_body, seed=seed,
                     configs=make_configs(count),
                     lint="off", meta={"rig": "chaos"})


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------

def serial_stable_keys(count: int, tmp_path: Path, *,
                       seed: int = DEFAULT_SEED) -> List[tuple]:
    """The serial scorecard the fabric must reproduce exactly.

    Runs the identical sweep through the in-process engine with a
    journal, then summarizes.  ``RIG_WORK_MS`` is unset here, so the
    oracle runs at full speed -- stable keys are wall-clock-free, and
    the configs are byte-identical to the chaos sweep's.
    """
    journal = Path(tmp_path) / "serial.jsonl"
    campaign = Campaign(chaos_body, seed=seed, lint="off")
    campaign.run(make_configs(count), journal=journal)
    return [row.stable_key() for row in summarize_journal(journal).runs]


def merged_stable_keys(fabric_dir: Path) -> List[tuple]:
    return [row.stable_key()
            for row in merge_campaign_dir(fabric_dir).runs]


# ----------------------------------------------------------------------
# subprocess sweep control
# ----------------------------------------------------------------------

def rig_env(work_ms: Optional[float] = None) -> Dict[str, str]:
    env = dict(os.environ)
    entries = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    existing = env.get("PYTHONPATH")
    if existing:
        entries.append(existing)
    env["PYTHONPATH"] = os.pathsep.join(entries)
    env.pop("RIG_WORK_MS", None)
    if work_ms is not None:
        env["RIG_WORK_MS"] = str(work_ms)
    return env


def spawn_sweep(fabric_dir: Path, count: int, *, workers: int = 2,
                work_ms: float = DEFAULT_WORK_MS,
                ttl: Optional[float] = None,
                seed: int = DEFAULT_SEED,
                resume: bool = False) -> subprocess.Popen:
    """Launch one sweep attempt (coordinator + workers) as a subprocess.

    ``work_ms`` rides in the environment (``RIG_WORK_MS``), which the
    coordinator re-exports to its workers -- the sweep's configs stay
    identical to the serial oracle's no matter how slow it runs.
    """
    argv = [sys.executable, "-m", "tests.fabric.rig",
            "--dir", str(Path(fabric_dir).resolve()),
            "--count", str(count),
            "--workers", str(workers), "--seed", str(seed)]
    if ttl is not None:
        argv += ["--ttl", str(ttl)]
    if resume:
        argv.append("--resume")
    return subprocess.Popen(argv, cwd=str(REPO_ROOT),
                            env=rig_env(work_ms),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def read_state(fabric_dir: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads((Path(fabric_dir) / "state.json").read_text())
    except (OSError, ValueError):
        return None


def worker_pids(fabric_dir: Path) -> Dict[str, int]:
    state = read_state(fabric_dir)
    if not state:
        return {}
    return {name: int(pid)
            for name, pid in (state.get("workers") or {}).items()}


def run_end_count(fabric_dir: Path) -> int:
    """Durable ``campaign.run_end`` records across every journal.

    Reads raw text (journals are being appended to while we poll); a
    torn trailing line simply does not contain the full kind marker yet.
    """
    marker = f'"{K.CAMPAIGN_RUN_END}"'
    total = 0
    journals = Path(fabric_dir) / "journals"
    if not journals.is_dir():
        return 0
    for path in journals.glob("*.jsonl"):
        try:
            total += path.read_text(errors="replace").count(marker)
        except OSError:
            continue
    return total


def campaign_ends(fabric_dir: Path) -> List[Dict[str, Any]]:
    """Every ``campaign.end`` payload in the coordinator journal."""
    path = Path(fabric_dir) / "journals" / "coordinator.jsonl"
    ends = []
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return ends
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("kind") == K.CAMPAIGN_END:
            ends.append(record.get("data") or {})
    return ends


def wait_until(predicate: Callable[[], bool], *, timeout: float = 30.0,
               poll: float = 0.02, what: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError(f"timed out after {timeout}s waiting for {what}")


def sigkill(pid: int) -> bool:
    try:
        os.kill(pid, signal.SIGKILL)
        return True
    except (ProcessLookupError, PermissionError):
        return False


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:
        return True


# ----------------------------------------------------------------------
# the killable sweep entrypoint
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.core.fabric import FabricError, run_sockets

    parser = argparse.ArgumentParser(
        prog="tests.fabric.rig",
        description="one killable chaos-rig sweep attempt")
    parser.add_argument("--dir", required=True)
    parser.add_argument("--count", type=int, default=12)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--ttl", type=float, default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--resume", action="store_true",
                        help="load the spec from --dir instead of "
                             "rebuilding it")
    args = parser.parse_args(argv)

    if args.resume:
        spec = SweepSpec.load(Path(args.dir) / "spec.pkl")
    else:
        spec = make_spec(args.count, seed=args.seed)
    options: Dict[str, Any] = {"workers": args.workers}
    if args.ttl is not None:
        options["ttl"] = args.ttl
    try:
        run_sockets(spec, args.dir, **options)
    except FabricError as err:
        print(f"rig: {err}", file=sys.stderr)
        return 3 if err.status == "workers_lost" else 1
    return 0


if __name__ == "__main__":
    # under ``python -m`` this file runs as ``__main__``, which would
    # pickle the body with an unimportable module path; delegate to the
    # canonically imported module so workers can unpickle the spec
    from tests.fabric import rig as _rig
    sys.exit(_rig.main())
