"""The PFI layer: probe/fault injection as a protocol stack layer.

"The PFI layer intercepts all messages coming into and leaving the target
layer.  [It] can manipulate messages to/from the target layer as they pass
through the protocol stack, and it can introduce spontaneous messages into
the system to observe the behavior of target protocol participants on
other nodes."

Data path:

- ``push`` (message travelling down, *leaving* the target layer) runs the
  **send filter**;
- ``pop`` (message travelling up, *entering* the target layer) runs the
  **receive filter**.

After a filter runs, the recorded actions are applied:

- injections first (a probe may need to precede the triggering message);
- ``drop`` discards the message;
- ``hold`` parks it in a named queue until a later ``release``;
- otherwise the message is forwarded, after ``delay`` seconds if
  requested, along with any duplicates.

Delayed/duplicated/released messages bypass the filters on re-emission, so
a delayed message is not re-filtered (and re-delayed) when its timer fires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.context import DROP, HOLD, ScriptContext
from repro.core.distributions import DistributionSet
from repro.core.msglog import MessageLog
from repro.core.script import FilterScript, PythonFilter
from repro.core.stubs import PacketStubs
from repro.core.sync import ScriptSync
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


class PFILayer(Protocol):
    """A probe/fault-injection layer spliced into a protocol stack."""

    def __init__(self, name: str, scheduler: Scheduler, stubs: PacketStubs, *,
                 trace: Optional[TraceRecorder] = None,
                 sync: Optional[ScriptSync] = None,
                 dist: Optional[DistributionSet] = None,
                 node: str = ""):
        super().__init__(name)
        self.scheduler = scheduler
        self.stubs = stubs
        self.trace = trace
        self.sync = sync or ScriptSync()
        self.dist = dist or DistributionSet()
        self.node = node or name
        self.send_filter: Optional[FilterScript] = None
        self.receive_filter: Optional[FilterScript] = None
        self.send_state: Dict[str, Any] = {}
        self.receive_state: Dict[str, Any] = {}
        self.msglog = MessageLog(stubs, trace, node=self.node)
        self._held: Dict[Tuple[str, str], List[Message]] = OrderedDict()
        self._killed = False
        self.stats = {"send_seen": 0, "receive_seen": 0, "dropped": 0,
                      "delayed": 0, "duplicated": 0, "injected": 0,
                      "held": 0, "released": 0}

    # ------------------------------------------------------------------
    # filter installation
    # ------------------------------------------------------------------

    def set_send_filter(self, script) -> None:
        """Install the send filter (FilterScript or plain callable)."""
        self.send_filter = _as_filter(script)

    def set_receive_filter(self, script) -> None:
        """Install the receive filter (FilterScript or plain callable)."""
        self.receive_filter = _as_filter(script)

    def clear_filters(self) -> None:
        """Remove both filters; the layer becomes transparent."""
        self.send_filter = None
        self.receive_filter = None

    def kill(self) -> None:
        """Emulate a crash at this layer: drop everything from now on.

        Used for the *process crash* and *link crash* failure models when
        the crash must be local to one stack rather than the whole node.
        """
        self._killed = True

    def revive(self) -> None:
        """Undo :meth:`kill`."""
        self._killed = False

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def push(self, msg: Message) -> None:
        self._process(msg, "send")

    def pop(self, msg: Message) -> None:
        self._process(msg, "receive")

    def _process(self, msg: Message, direction: str) -> None:
        if self._killed:
            self.stats["dropped"] += 1
            self._record("pfi.killed_drop", direction=direction, uid=msg.uid)
            return
        self.stats[f"{direction}_seen"] += 1
        script = self.send_filter if direction == "send" else self.receive_filter
        if script is None:
            self._forward(msg, direction)
            return

        state = self.send_state if direction == "send" else self.receive_state
        peer = self.receive_state if direction == "send" else self.send_state
        ctx = ScriptContext(
            msg=msg, direction=direction, now=self.scheduler.now,
            state=state, peer_state=peer, stubs=self.stubs, dist=self.dist,
            sync=self.sync, node=self.node, pfi=self)
        script.run(ctx)
        self._apply(ctx)

    def _apply(self, ctx: ScriptContext) -> None:
        direction = ctx.direction
        for injected, inj_direction, delay in ctx.injections:
            self.inject(injected, inj_direction, delay=delay)

        try:
            self._apply_verdict(ctx)
        finally:
            # released messages follow the current one, so "pass this and
            # release the held one" reorders exactly as scripts expect
            for tag, delay in ctx.releases:
                self._release(direction, tag, delay)

    def _apply_verdict(self, ctx: ScriptContext) -> None:
        direction = ctx.direction
        if ctx.verdict == DROP:
            self.stats["dropped"] += 1
            self._record("pfi.drop", direction=direction, uid=ctx.msg.uid,
                         msg_type=ctx.msg_type())
            return
        if ctx.verdict == HOLD:
            self.stats["held"] += 1
            self._held.setdefault((direction, ctx.hold_tag), []).append(ctx.msg)
            self._record("pfi.hold", direction=direction, uid=ctx.msg.uid,
                         tag=ctx.hold_tag)
            return

        if ctx.delay_s > 0:
            self.stats["delayed"] += 1
            self._record("pfi.delay", direction=direction, uid=ctx.msg.uid,
                         seconds=ctx.delay_s, msg_type=ctx.msg_type())
            self.scheduler.schedule(ctx.delay_s, self._forward, ctx.msg, direction)
        else:
            self._forward(ctx.msg, direction)

        for extra_delay in ctx.duplicate_delays:
            self.stats["duplicated"] += 1
            copy = ctx.msg.copy()
            self._record("pfi.duplicate", direction=direction, uid=copy.uid,
                         original=ctx.msg.uid)
            if extra_delay > 0:
                self.scheduler.schedule(extra_delay, self._forward, copy, direction)
            else:
                self._forward(copy, direction)

    def _forward(self, msg: Message, direction: str) -> None:
        if self._killed:
            self.stats["dropped"] += 1
            return
        if direction == "send":
            self.send_down(msg)
        else:
            self.send_up(msg)

    # ------------------------------------------------------------------
    # injection / reordering helpers
    # ------------------------------------------------------------------

    def inject(self, msg: Message, direction: str, *, delay: float = 0.0) -> None:
        """Introduce a spontaneous message, bypassing the filters.

        ``direction='send'`` pushes toward the wire (probing remote
        participants); ``direction='receive'`` delivers up into the target
        layer (forging traffic the target believes it received).
        """
        self.stats["injected"] += 1
        msg.meta["injected"] = True
        self._record("pfi.inject", direction=direction, uid=msg.uid,
                     msg_type=self.stubs.msg_type(msg))
        if delay > 0:
            self.scheduler.schedule(delay, self._forward, msg, direction)
        else:
            self._forward(msg, direction)

    def _release(self, direction: str, tag: str, delay: float) -> None:
        queue = self._held.pop((direction, tag), [])
        for i, msg in enumerate(queue):
            self.stats["released"] += 1
            self._record("pfi.release", direction=direction, uid=msg.uid, tag=tag)
            if delay > 0:
                self.scheduler.schedule(delay, self._forward, msg, direction)
            else:
                self._forward(msg, direction)

    def held_count(self, direction: str, tag: str = "default") -> int:
        """Messages currently parked in a hold queue."""
        return len(self._held.get((direction, tag), ()))

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------

    def log_message(self, msg: Message, *, direction: str, note: str = "") -> None:
        """Record a message through the layer's :class:`MessageLog`."""
        self.msglog.log(msg, t=self.scheduler.now, direction=direction, note=note)

    def _record(self, kind: str, **attrs: Any) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now, node=self.node, **attrs)


def _as_filter(script) -> FilterScript:
    if isinstance(script, FilterScript):
        return script
    if callable(script):
        return PythonFilter(script)
    raise TypeError(f"cannot use {script!r} as a filter script")
