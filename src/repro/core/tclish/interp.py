"""The tclish interpreter object.

An :class:`Interp` owns a global variable table, a proc table, and a command
registry.  Evaluating a script mutates interpreter state, which is exactly
the persistence property the paper's filter scripts rely on: a receive
filter can count messages across invocations because the count lives in the
interpreter, not the script.

Substitution rules follow Tcl: a braced word is passed verbatim; quoted and
bare words undergo backslash, variable (``$name``/``${name}``) and command
(``[script]``) substitution.

Evaluation is compile-once: ``eval`` looks the source up in the shared
compile cache (:mod:`repro.core.tclish.compiler`) and executes the cached
command list, so a filter script re-run for every intercepted message is
lexed exactly once.  ``Interp(compiled=False)`` keeps the original
parse-per-eval path alive for equivalence testing and benchmarking.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.tclish import compiler, stdlib_loader
from repro.core.tclish.compiler import (
    LITERAL,
    SEG_TEXT,
    SEG_VAR,
    VARREF,
    CompiledCommand,
    CompiledScript,
)
from repro.core.tclish.errors import TclError, TclReturn
from repro.core.tclish.lexer import split_commands, split_words

CommandFn = Callable[["Interp", List[str]], str]


class Proc:
    """A user-defined procedure created by the ``proc`` command."""

    def __init__(self, name: str, params: List[List[str]], body: str):
        self.name = name
        self.params = params  # each entry: [name] or [name, default]
        self.body = body

    def __call__(self, interp: "Interp", args: List[str]) -> str:
        frame: Dict[str, str] = {}
        params = list(self.params)
        collects_args = bool(params) and params[-1][0] == "args"
        fixed = params[:-1] if collects_args else params
        if len(args) > len(fixed) and not collects_args:
            raise TclError(f'too many args to proc "{self.name}"')
        for i, param in enumerate(fixed):
            if i < len(args):
                frame[param[0]] = args[i]
            elif len(param) > 1:
                frame[param[0]] = param[1]
            else:
                raise TclError(
                    f'missing argument "{param[0]}" to proc "{self.name}"')
        if collects_args:
            extra = args[len(fixed):]
            frame["args"] = " ".join(extra)
        interp._frames.append(frame)
        try:
            return interp.eval(self.body)
        except TclReturn as ret:
            return ret.value
        finally:
            interp._frames.pop()


class Interp:
    """A tclish interpreter with persistent state."""

    def __init__(self, output: Optional[Callable[[str], None]] = None,
                 *, compiled: bool = True):
        self.globals: Dict[str, str] = {}
        self.procs: Dict[str, Proc] = {}
        self.commands: Dict[str, CommandFn] = {}
        self._frames: List[Dict[str, str]] = []
        self._global_links: List[set] = []
        self.output_lines: List[str] = []
        self._output = output
        #: when False, every eval re-lexes its source (the pre-compiler
        #: behaviour); kept for equivalence tests and benchmarks
        self.compiled = compiled
        #: number of eval() script evaluations on this interpreter
        self.eval_count = 0
        #: evals answered from the shared compile cache
        self.cache_hits = 0
        #: evals that had to compile their source first
        self.cache_misses = 0
        #: opt-in :class:`repro.obs.profiler.ScriptProfiler`; when set,
        #: the compiled executor records per-command wall time.  The
        #: disabled cost is one ``is not None`` test per command.
        self.profiler = None
        stdlib_loader.install(self)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def _current_scope(self) -> Dict[str, str]:
        return self._frames[-1] if self._frames else self.globals

    def _resolve_scope(self, name: str) -> Dict[str, str]:
        if self._frames and name in self._linked_globals():
            return self.globals
        return self._current_scope()

    def _linked_globals(self) -> set:
        return self._global_links[-1] if self._global_links else set()

    def link_global(self, name: str) -> None:
        """Make ``name`` refer to the global variable inside the current proc."""
        if not self._frames:
            return
        while len(self._global_links) < len(self._frames):
            self._global_links.append(set())
        self._global_links[len(self._frames) - 1].add(name)

    def set_var(self, name: str, value: Any) -> str:
        """Set a variable in the current scope; returns the string value."""
        text = value if isinstance(value, str) else _to_tcl_string(value)
        self._resolve_scope(name)[name] = text
        return text

    def get_var(self, name: str) -> str:
        """Read a variable, checking the current frame then globals."""
        scope = self._resolve_scope(name)
        if name in scope:
            return scope[name]
        if scope is not self.globals and name in self.globals:
            return self.globals[name]
        raise TclError(f'can\'t read "{name}": no such variable')

    def has_var(self, name: str) -> bool:
        """True if the variable is visible from the current scope."""
        scope = self._resolve_scope(name)
        return name in scope or name in self.globals

    def unset_var(self, name: str) -> None:
        """Remove a variable from whichever scope holds it."""
        scope = self._resolve_scope(name)
        if name in scope:
            del scope[name]
        elif name in self.globals:
            del self.globals[name]
        else:
            raise TclError(f'can\'t unset "{name}": no such variable')

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    def register_command(self, name: str, fn: CommandFn) -> None:
        """Install a command implemented in Python.

        This is the bridge the paper describes: "user defined procedures ...
        written in C and linked into the tool" -- here they are Python
        callables registered on the interpreter.
        """
        self.commands[name] = fn

    def register_function(self, name: str, fn: Callable[..., Any]) -> None:
        """Install a plain Python function as a command.

        Arguments arrive as strings; the return value is stringified.
        """
        def wrapper(_interp: "Interp", args: List[str]) -> str:
            return _to_tcl_string(fn(*args))
        self.commands[name] = wrapper

    def write(self, text: str) -> None:
        """Emit one line of script output (``puts``)."""
        self.output_lines.append(text)
        if self._output is not None:
            self._output(text)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def eval(self, script: Union[str, CompiledScript]) -> str:
        """Evaluate a script; the result is the last command's result.

        Accepts source text or an already-compiled script.  Source text is
        resolved through the shared compile cache (parse once, execute per
        call) unless the interpreter was built with ``compiled=False``.
        """
        self.eval_count += 1
        if type(script) is str:
            if not self.compiled:
                result = ""
                for command in split_commands(script):
                    result = self.eval_command(command)
                return result
            script, hit = compiler.lookup(script)
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        result = ""
        for command in script.commands:
            result = self._exec_compiled(command)
        return result

    def compile(self, source: str) -> CompiledScript:
        """Compile (and cache) a script without evaluating it."""
        script, hit = compiler.lookup(source)
        if not hit:
            self.cache_misses += 1
        return script

    def stats(self) -> Dict[str, int]:
        """Observability counters for the execution engine."""
        return {
            "eval_count": self.eval_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_size": compiler.cache_size(),
        }

    def fill_metrics(self, registry, **labels: Any) -> None:
        """Absorb the engine counters into a metrics registry.

        The registry form (see :mod:`repro.obs.metrics`) supersedes the
        bare :meth:`stats` dict when snapshotting a whole run: labelled
        gauges merge cleanly across filters and campaign workers.
        """
        for name, value in self.stats().items():
            registry.gauge(f"tclish_{name}", **labels).set(value)

    def _exec_compiled(self, command: CompiledCommand) -> str:
        """Execute one compiled command: resolve words, then dispatch."""
        values: List[str] = []
        append = values.append
        get_var = self.get_var
        for word in command.words:
            kind = word.kind
            if kind == LITERAL:
                append(word.text)
            elif kind == VARREF:
                append(get_var(word.text))
            else:
                append(self._run_segments(word.segments))
        profiler = self.profiler
        if profiler is not None:
            start = perf_counter()
            result = self.call(values[0], values[1:])
            profiler.record_command(values[0], perf_counter() - start)
            return result
        return self.call(values[0], values[1:])

    def _run_segments(self, segments) -> str:
        """Resolve a pre-tokenised substitution program."""
        parts: List[str] = []
        for code, payload in segments:
            if code == SEG_TEXT:
                parts.append(payload)
            elif code == SEG_VAR:
                parts.append(self.get_var(payload))
            else:
                parts.append(self.eval(payload))
        return "".join(parts)

    def eval_command(self, command: str) -> str:
        """Evaluate a single command string (parse-per-call path)."""
        raw_words = split_words(command)
        if not raw_words:
            return ""
        words = [self.substitute_word(w) for w in raw_words]
        return self.call(words[0], words[1:])

    def call(self, name: str, args: List[str]) -> str:
        """Invoke a proc or registered command by name.

        Unknown names always surface as ``TclError("invalid command name
        ...")`` -- never a bare ``KeyError`` -- and a ``KeyError`` escaping
        a command implementation (e.g. a registered Python function doing
        a dict lookup) is normalized to :class:`TclError` too, so ``catch``
        works and the static analyzer
        (:mod:`repro.core.tclish.lint`) and the runtime agree on one
        error surface.
        """
        proc = self.procs.get(name)
        if proc is not None:
            return proc(self, args)
        command = self.commands.get(name)
        if command is None:
            raise TclError(f'invalid command name "{name}"')
        try:
            result = command(self, args)
        except KeyError as err:
            raise TclError(f'error in command "{name}": '
                           f"no such key {err}") from err
        return result if isinstance(result, str) else _to_tcl_string(result)

    # ------------------------------------------------------------------
    # substitution
    # ------------------------------------------------------------------

    def substitute_word(self, word: str) -> str:
        """Apply Tcl substitution rules to one raw word."""
        if len(word) >= 2 and word[0] == "{" and word[-1] == "}":
            return word[1:-1]
        if len(word) >= 2 and word[0] == '"' and word[-1] == '"':
            return self.substitute(word[1:-1])
        return self.substitute(word)

    def substitute(self, text: str) -> str:
        """Backslash, variable, and command substitution over a string."""
        if "$" not in text and "[" not in text and "\\" not in text:
            return text
        if self.compiled:
            # stable strings (if/while conditions, expr bodies) tokenise
            # once and replay as segments on every later call
            return self._run_segments(compiler.lookup_substitution(text))
        out: List[str] = []
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch == "\\" and i + 1 < n:
                out.append(_backslash(text[i + 1]))
                i += 2
            elif ch == "$":
                name, i = _scan_varname(text, i)
                if name is None:
                    out.append("$")
                else:
                    out.append(self.get_var(name))
            elif ch == "[":
                depth = 0
                j = i
                while j < n:
                    if text[j] == "\\" and j + 1 < n:
                        j += 2
                        continue
                    if text[j] == "[":
                        depth += 1
                    elif text[j] == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                if depth != 0:
                    raise TclError("unmatched open bracket in substitution")
                out.append(self.eval(text[i + 1:j]))
                i = j + 1
            else:
                out.append(ch)
                i += 1
        return "".join(out)


def _scan_varname(text: str, i: int):
    """Parse ``$name`` or ``${name}`` starting at index i (the '$')."""
    n = len(text)
    if i + 1 >= n:
        return None, i + 1
    if text[i + 1] == "{":
        j = text.find("}", i + 2)
        if j < 0:
            raise TclError("unmatched ${")
        return text[i + 2:j], j + 1
    j = i + 1
    while j < n and (text[j].isalnum() or text[j] == "_"):
        j += 1
    if j == i + 1:
        return None, i + 1
    return text[i + 1:j], j


_BACKSLASH_MAP = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"',
                  "$": "$", "[": "[", "]": "]", "{": "{", "}": "}",
                  ";": ";", " ": " ", "\n": ""}


def _backslash(ch: str) -> str:
    return _BACKSLASH_MAP.get(ch, ch)


def _to_tcl_string(value: Any) -> str:
    """Convert a Python value to its Tcl string form."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e16:
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, (list, tuple)):
        return " ".join(_to_tcl_string(item) for item in value)
    return str(value)
