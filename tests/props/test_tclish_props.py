"""Property-based tests for the tclish interpreter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tclish import Interp
from repro.core.tclish.expr import evaluate, format_value
from repro.core.tclish.stdlib_loader import build_list, parse_list

small_ints = st.integers(min_value=-10**6, max_value=10**6)

list_elements = st.lists(
    st.text(alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters=" _-."), min_size=0, max_size=12),
    max_size=12)


@given(list_elements)
def test_list_build_parse_roundtrip(elements):
    assert parse_list(build_list(elements)) == elements


@given(small_ints, small_ints)
def test_expr_addition_matches_python(a, b):
    assert evaluate(f"{a} + {b}") == a + b


@given(small_ints, small_ints)
def test_expr_comparison_matches_python(a, b):
    assert evaluate(f"{a} < {b}") == (1 if a < b else 0)
    assert evaluate(f"{a} == {b}") == (1 if a == b else 0)


@given(small_ints, st.integers(min_value=1, max_value=10**6))
def test_expr_division_matches_tcl_floor(a, b):
    assert evaluate(f"{a} / {b}") == a // b


@given(small_ints)
def test_set_get_roundtrip_integer(value):
    interp = Interp()
    interp.eval(f"set x {value}")
    assert interp.eval("set x") == str(value)


@given(st.text(alphabet=st.characters(
    whitelist_categories=("Lu", "Ll", "Nd"),
    whitelist_characters="_"), min_size=1, max_size=20))
def test_set_get_roundtrip_word(value):
    interp = Interp()
    interp.eval(f"set x {{{value}}}")
    assert interp.eval("set x") == value


@given(st.lists(small_ints, min_size=1, max_size=20))
@settings(max_examples=50)
def test_foreach_sums_like_python(values):
    interp = Interp()
    list_text = " ".join(str(v) for v in values)
    interp.eval(f"set total 0; foreach v {{{list_text}}} {{incr total $v}}")
    assert interp.eval("set total") == str(sum(values))


@given(st.integers(min_value=0, max_value=40))
def test_while_counts_exactly(n):
    interp = Interp()
    interp.eval(f"set i 0; while {{$i < {n}}} {{incr i}}")
    assert interp.eval("set i") == str(n)


@given(small_ints)
def test_format_value_numeric_stability(n):
    assert format_value(n) == str(n)


@given(st.lists(small_ints, min_size=1, max_size=15))
def test_lindex_matches_python_indexing(values):
    interp = Interp()
    list_text = " ".join(str(v) for v in values)
    for i, expected in enumerate(values):
        assert interp.eval(f"lindex {{{list_text}}} {i}") == str(expected)
    assert interp.eval(f"lindex {{{list_text}}} end") == str(values[-1])
