"""Diagnostic objects produced by the tclish static analyzer.

A :class:`Diagnostic` pins one finding to a source position.  Codes are
stable identifiers (``SL001`` ...) so campaign logs, CI output and the
troubleshooting table in ``docs/scriptlint.md`` can reference them; the
default severity of each code lives in :data:`CODES` so callers can ask
"would this stop a campaign?" without string matching.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

#: severity levels, ordered weakest to strongest
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}

#: code -> (default severity, short title)
#:
#: SL0xx are scriptlint (tclish) codes; SC1xx are the Python
#: determinism/checkpoint-safety pass and SC2xx the trace-schema drift
#: pass of :mod:`repro.staticcheck`.  All three passes share this table
#: (and :class:`Diagnostic`) so reports, SARIF export and the docs code
#: tables have one source of truth.
CODES: Dict[str, tuple] = {
    "SL000": (ERROR, "syntax error"),
    "SL001": (ERROR, "unknown command"),
    "SL002": (ERROR, "wrong number of arguments"),
    "SL003": (ERROR, "variable read before it is set"),
    "SL004": (WARNING, "unreachable code"),
    "SL005": (ERROR, "conflicting or dead action after xDrop"),
    "SL006": (ERROR, "constant out of range"),
    "SL007": (ERROR, "negative count or duration"),
    "SL008": (WARNING, "unbalanced xHold/xRelease tag"),
    "SL009": (WARNING, "peer_set/peer_get key mismatch"),
    "SL010": (WARNING, "sync_set/sync_get key mismatch"),
    "SL011": (WARNING, "variable written but never read"),
    "SL012": (WARNING, "condition is constant"),
    "SL013": (WARNING, "clause is unreachable"),
    "SC101": (ERROR, "closure or lambda scheduled as a callback"),
    "SC102": (ERROR, "world state smuggled through a default argument"),
    "SC103": (ERROR, "wall-clock time in simulation code"),
    "SC104": (ERROR, "unseeded module-level random"),
    "SC105": (WARNING, "unordered set iteration feeds trace records"),
    "SC106": (WARNING, "id() in a hash or fingerprint"),
    "SC201": (ERROR, "subscription to a never-emitted trace kind"),
    "SC202": (INFO, "emitted trace kind has no oracle coverage"),
    "SC203": (ERROR, "registry kind no emit site produces"),
    "SC204": (ERROR, "emitted kind missing from the registry"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding, pinned to a source location."""

    code: str
    severity: str
    line: int
    col: int
    message: str
    hint: str = ""
    #: which script of a pair produced it ("send"/"receive"/"" for single)
    script: str = ""

    def format(self, source_name: str = "<script>") -> str:
        """Render the conventional one-line ``file:line:col`` form."""
        where = source_name
        if self.script:
            where = f"{source_name}[{self.script}]"
        text = (f"{where}:{self.line}:{self.col}: {self.severity} "
                f"{self.code}: {self.message}")
        if self.hint:
            text += f" ({self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (CLI ``--json`` output)."""
        entry: Dict[str, object] = {
            "code": self.code, "severity": self.severity,
            "line": self.line, "col": self.col, "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.hint:
            entry["hint"] = self.hint
        if self.script:
            entry["script"] = self.script
        return entry

    def fingerprint(self, source_name: str = "") -> str:
        """Stable identity of this finding across runs and processes.

        Hashes the code, script tag, message and position (plus the
        source name when the caller scopes by file), so CI can track a
        finding across re-runs -- this is what lands in SARIF
        ``partialFingerprints``.  Hints are excluded: wording tweaks to
        advice must not change a finding's identity.
        """
        basis = "\x1f".join((source_name, self.script, self.code,
                             str(self.line), str(self.col), self.message))
        return hashlib.sha256(basis.encode()).hexdigest()[:16]


@dataclass
class LintReport:
    """All diagnostics for one script (or send/receive pair)."""

    source_name: str = "<script>"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics in source order (line, col, code)."""
        return sorted(self.diagnostics,
                      key=lambda d: (d.script, d.line, d.col, d.code))

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    def at_least(self, severity: str) -> List[Diagnostic]:
        """Diagnostics at or above the given severity."""
        floor = _SEVERITY_RANK[severity]
        return [d for d in self.diagnostics
                if _SEVERITY_RANK[d.severity] >= floor]

    def ok(self, *, severity: str = ERROR) -> bool:
        """True when nothing at or above ``severity`` was found."""
        return not self.at_least(severity)


def make(code: str, line: int, col: int, message: str, hint: str = "",
         *, severity: Optional[str] = None, script: str = "") -> Diagnostic:
    """Build a diagnostic, defaulting severity from the code table."""
    if severity is None:
        severity = CODES[code][0]
    return Diagnostic(code=code, severity=severity, line=line, col=col,
                      message=message, hint=hint, script=script)
