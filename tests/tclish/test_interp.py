"""Unit tests for the tclish interpreter core: variables, substitution,
procs, command registration, and state persistence."""

import pytest

from repro.core.tclish import Interp, TclError


@pytest.fixture
def interp():
    return Interp()


class TestVariables:
    def test_set_and_get(self, interp):
        assert interp.eval("set x 42") == "42"
        assert interp.eval("set x") == "42"

    def test_unset(self, interp):
        interp.eval("set x 1")
        interp.eval("unset x")
        with pytest.raises(TclError):
            interp.eval("set x")

    def test_unset_missing_raises(self, interp):
        with pytest.raises(TclError):
            interp.eval("unset nope")

    def test_state_persists_across_evals(self, interp):
        interp.eval("set count 0")
        for _ in range(5):
            interp.eval("incr count")
        assert interp.eval("set count") == "5"

    def test_incr_creates_missing_var(self, interp):
        assert interp.eval("incr fresh") == "1"

    def test_incr_with_step(self, interp):
        interp.eval("set x 10")
        assert interp.eval("incr x -3") == "7"

    def test_append(self, interp):
        interp.eval("set s abc")
        assert interp.eval("append s def ghi") == "abcdefghi"


class TestSubstitution:
    def test_variable_substitution(self, interp):
        interp.eval("set name world")
        assert interp.eval('set greeting "hello $name"') == "hello world"

    def test_braced_variable(self, interp):
        interp.eval("set ab 1")
        assert interp.eval('set y "${ab}2"') == "12"

    def test_braces_suppress_substitution(self, interp):
        interp.eval("set x 1")
        assert interp.eval("set y {$x}") == "$x"

    def test_command_substitution(self, interp):
        assert interp.eval("set x [expr {2 + 3}]") == "5"

    def test_nested_command_substitution(self, interp):
        assert interp.eval("set x [expr {[expr {1 + 1}] * 3}]") == "6"

    def test_backslash_escapes(self, interp):
        assert interp.eval(r'set x "a\tb"') == "a\tb"
        assert interp.eval(r'set y "\$notvar"') == "$notvar"

    def test_undefined_variable_raises(self, interp):
        with pytest.raises(TclError):
            interp.eval("set x $missing")

    def test_dollar_without_name_is_literal(self, interp):
        assert interp.eval('set x "$ alone"') == "$ alone"


class TestProcs:
    def test_define_and_call(self, interp):
        interp.eval("proc double {n} { expr {$n * 2} }")
        assert interp.eval("double 21") == "42"

    def test_default_argument(self, interp):
        interp.eval("proc greet {{name world}} { return hello-$name }")
        assert interp.eval("greet") == "hello-world"
        assert interp.eval("greet tcl") == "hello-tcl"

    def test_args_collector(self, interp):
        interp.eval("proc count {args} { llength $args }")
        assert interp.eval("count a b c") == "3"

    def test_missing_argument_raises(self, interp):
        interp.eval("proc f {a b} { set a }")
        with pytest.raises(TclError):
            interp.eval("f onlyone")

    def test_too_many_arguments_raises(self, interp):
        interp.eval("proc f {a} { set a }")
        with pytest.raises(TclError):
            interp.eval("f 1 2")

    def test_locals_do_not_leak(self, interp):
        interp.eval("proc f {} { set local 1 }")
        interp.eval("f")
        with pytest.raises(TclError):
            interp.eval("set local")

    def test_global_links_to_globals(self, interp):
        interp.eval("set g 10")
        interp.eval("proc bump {} { global g; incr g }")
        interp.eval("bump")
        assert interp.eval("set g") == "11"

    def test_recursion(self, interp):
        interp.eval("""
        proc fib {n} {
            if {$n < 2} { return $n }
            expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}
        }
        """)
        assert interp.eval("fib 10") == "55"

    def test_return_value(self, interp):
        interp.eval("proc f {} { return early; set never 1 }")
        assert interp.eval("f") == "early"


class TestCommands:
    def test_unknown_command_raises(self, interp):
        with pytest.raises(TclError):
            interp.eval("no_such_command")

    def test_register_command(self, interp):
        interp.register_command("shout",
                                lambda i, args: " ".join(args).upper())
        assert interp.eval("shout hello there") == "HELLO THERE"

    def test_register_function(self, interp):
        interp.register_function("add", lambda a, b: int(a) + int(b))
        assert interp.eval("add 2 3") == "5"

    def test_register_function_stringifies_bool(self, interp):
        interp.register_function("yes", lambda: True)
        assert interp.eval("yes") == "1"

    def test_puts_collected(self, interp):
        interp.eval('puts "line one"')
        interp.eval('puts -nonewline "line two"')
        assert interp.output_lines == ["line one", "line two"]

    def test_output_callback(self):
        captured = []
        interp = Interp(output=captured.append)
        interp.eval('puts "hi"')
        assert captured == ["hi"]


class TestPaperScript:
    """The exact shape of the ACK-dropping script in paper §3."""

    def test_ack_drop_script_semantics(self, interp):
        interp.register_command("msg_type", lambda i, a: "1")
        dropped = []
        interp.register_command("xDrop", lambda i, a: dropped.append(1) or "")
        interp.register_command("msg_log", lambda i, a: "")
        interp.eval("""
            # Message types are ACK, NACK, and GACK.
            set ACK 0x1
            set NACK 0x2
            set GACK 0x4

            puts -nonewline "receive filter: "
            msg_log cur_msg

            set type [msg_type cur_msg]
            if {$type == $ACK} {
               xDrop cur_msg
            }
        """)
        assert dropped == [1]
