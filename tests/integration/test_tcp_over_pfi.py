"""Integration tests: full stacks, PFI layer spliced, TCP end to end."""

import pytest

from repro.core import TclishFilter
from repro.experiments.tcp_common import (build_tcp_testbed, open_connection,
                                          stream_from_vendor)
from repro.tcp import SOLARIS_23, SUNOS_413, XKERNEL


class TestTestbed:
    def test_handshake_through_pfi(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)
        assert client.established and server.established

    def test_data_through_transparent_pfi(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)
        client.send(b"through the layers")
        testbed.env.run_until(2.0)
        assert bytes(server.delivered) == b"through the layers"

    def test_pfi_sees_both_directions(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)
        client.send(b"x" * 512)
        testbed.env.run_until(2.0)
        assert testbed.pfi.stats["receive_seen"] >= 2  # SYN + data
        assert testbed.pfi.stats["send_seen"] >= 2     # SYNACK + ACKs

    def test_pfi_layer_is_spliceable(self):
        """The PFI layer can be removed and traffic still flows."""
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)
        testbed.xkernel_stack.remove("pfi")
        client.send(b"no pfi anymore")
        testbed.env.run_until(2.0)
        assert bytes(server.delivered) == b"no pfi anymore"


class TestScriptedFaults:
    def test_drop_all_forces_vendor_timeout(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, _ = open_connection(testbed)
        testbed.pfi.set_receive_filter(lambda ctx: ctx.drop())
        client.send(b"z" * 512)
        testbed.env.run_until(1500.0)
        assert client.state == "CLOSED"
        assert client.close_reason == "retransmission_timeout"

    def test_tclish_and_python_filters_equivalent(self):
        """The same pass-30-then-drop experiment via both backends."""
        results = {}
        for backend in ("python", "tclish"):
            testbed = build_tcp_testbed(SUNOS_413)
            client, _ = open_connection(testbed)
            stream_from_vendor(testbed, client, segments=40, interval=0.5)
            if backend == "python":
                def fn(ctx):
                    n = ctx.state.get("n", 0) + 1
                    ctx.state["n"] = n
                    if n > 30:
                        ctx.drop()
                testbed.pfi.set_receive_filter(fn)
            else:
                testbed.pfi.set_receive_filter(TclishFilter(
                    "incr n; if {$n > 30} {xDrop cur_msg}",
                    init_script="set n 0"))
            testbed.env.run_until(1500.0)
            results[backend] = (
                testbed.trace.count("tcp.retransmit", conn="vendor:5000"),
                client.close_reason,
            )
        assert results["python"] == results["tclish"]

    def test_ack_delay_slows_but_does_not_break_transfer(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)

        def delay_acks(ctx):
            if ctx.msg_type() == "ACK":
                ctx.delay(0.5)
        testbed.pfi.set_send_filter(delay_acks)
        client.send(b"slowly" * 200)
        testbed.env.run_until(120.0)
        assert bytes(server.delivered) == b"slowly" * 200

    def test_spurious_ack_injection_is_ignored_by_vendor(self):
        """Probing: a forged ACK for unsent data must not corrupt state."""
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)
        probe = testbed.pfi.stubs.generate(
            "ACK", src_port=80, dst_port=5000,
            seq=server.snd_nxt, ack=client.snd_nxt + 99999,
            dst=1)
        testbed.pfi.inject(probe, "send")
        testbed.env.run_until(2.0)
        client.send(b"still works")
        testbed.env.run_until(4.0)
        assert bytes(server.delivered) == b"still works"

    def test_corruption_dropped_by_checksum_style_mutation(self):
        """Byzantine corruption of the seq field desynchronizes cleanly:
        the receiver treats it as out-of-order traffic, and the sender's
        retransmission (unmodified) eventually delivers."""
        testbed = build_tcp_testbed(SUNOS_413)
        client, server = open_connection(testbed)

        def corrupt_once(ctx):
            if ctx.msg_type() == "DATA" and not ctx.state.get("done"):
                ctx.state["done"] = True
                ctx.set_field("seq", ctx.field("seq") + 100000)
        testbed.pfi.set_receive_filter(corrupt_once)
        client.send(b"resilient")
        testbed.env.run_until(60.0)
        assert bytes(server.delivered) == b"resilient"


class TestCrossVendor:
    @pytest.mark.parametrize("profile", [SUNOS_413, SOLARIS_23, XKERNEL])
    def test_all_profiles_interoperate(self, profile):
        testbed = build_tcp_testbed(profile)
        client, server = open_connection(testbed)
        client.send(b"interop" * 100)
        testbed.env.run_until(10.0)
        assert bytes(server.delivered) == b"interop" * 100
