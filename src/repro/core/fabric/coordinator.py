"""The fabric coordinator: leases, heartbeats, spawning, and the merge.

One coordinator process owns a sweep attempt: it binds a socket, spawns
(or admits) workers, serves the lease protocol from a
:class:`~repro.core.fabric.shards.LeaseBoard`, and watches for loss --
a disconnected worker's leases return to the pending queue immediately,
a zombie's by TTL expiry.  All durable state lives *outside* the
coordinator (the spec, the content-addressed store, append-only
journals), so SIGKILLing the coordinator loses nothing: the next
``--resume`` probes the store for completed rows and only the remainder
is re-sharded.

``state.json`` in the campaign directory is advisory observability --
endpoint, coordinator pid, known worker pids, lease board snapshot --
refreshed atomically; the chaos rig reads it to find victims to SIGKILL,
and operators read it to see who holds what.  Nothing consumes it for
correctness.

When every worker is gone and shards remain, the coordinator aborts the
attempt with :class:`FabricError` (``status="workers_lost"``) after
journaling a ``campaign.end`` that says so -- it does not silently hang,
and it does not respawn: the decision to retry belongs to the caller
(``repro sweep --resume``), which is the resumability story, not a
supervision tree.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.fabric.protocol import (ProtocolError, recv_message,
                                        send_message)
from repro.core.fabric.shards import LeaseBoard, partition_shards
from repro.core.fabric.spec import SweepSpec
from repro.core.fabric.store import ResultStore
from repro.core.orchestrator import RunResult, _run_end_payload
from repro.netsim import kinds as K
from repro.obs.journal import Journal

DEFAULT_TTL_S = 15.0
DEFAULT_POLL_S = 0.05
DRAIN_TIMEOUT_S = 10.0


class FabricError(RuntimeError):
    """A fabric sweep attempt that cannot make progress.

    ``status`` mirrors the ``campaign.end`` journal payload --
    ``"workers_lost"`` when every worker died mid-sweep (the remainder
    is resumable), ``"spec_mismatch"`` when a resume directory holds a
    different sweep.
    """

    def __init__(self, message: str, *, status: str = "failed"):
        super().__init__(message)
        self.status = status


def _write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _worker_env() -> Dict[str, str]:
    """Child env whose PYTHONPATH reproduces this process's sys.path.

    Workers must unpickle the spec's body, which may live in a module
    only importable through the parent's path entries (e.g. a test rig
    under the repository root).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


class FabricCoordinator:
    """One sweep attempt over the sockets backend."""

    def __init__(self, spec: SweepSpec, fabric_dir: Union[str, Path], *,
                 workers: int = 2, ttl: float = DEFAULT_TTL_S,
                 poll: float = DEFAULT_POLL_S, spawn: bool = True,
                 host: str = "127.0.0.1",
                 shard_size: Optional[int] = None):
        if workers < 1:
            raise ValueError(f"sockets backend needs workers >= 1, "
                             f"got {workers}")
        self._spec = spec
        self._dir = Path(fabric_dir)
        self._workers = workers
        self._ttl = ttl
        self._poll = poll
        self._spawn = spawn
        self._host = host
        self._shard_size = shard_size
        self._lock = threading.Lock()
        self._board: Optional[LeaseBoard] = None
        self._journal: Optional[Journal] = None
        self._listener: Optional[socket.socket] = None
        self._procs: List[subprocess.Popen] = []
        self._connections = 0
        self._worker_pids: Dict[str, int] = {}
        self._aborted = False
        self._port: Optional[int] = None

    # ------------------------------------------------------------------
    # directory state
    # ------------------------------------------------------------------

    def _persist_spec(self) -> None:
        spec_path = self._dir / "spec.pkl"
        if spec_path.exists():
            existing = SweepSpec.load(spec_path)
            if existing.digest() != self._spec.digest():
                raise FabricError(
                    f"{self._dir} holds a different sweep "
                    f"(spec {existing.digest()}, ours "
                    f"{self._spec.digest()}); refusing to mix results",
                    status="spec_mismatch")
        else:
            self._spec.save(spec_path)

    def _write_state(self, status: str) -> None:
        board = self._board
        _write_json(self._dir / "state.json", {
            "status": status,
            "endpoint": ([self._host, self._port]
                         if self._port is not None else None),
            "coordinator_pid": os.getpid(),
            "spec": self._spec.digest(),
            "workers": dict(self._worker_pids),
            "board": board.as_dict() if board is not None else None,
        })

    # ------------------------------------------------------------------
    # protocol service
    # ------------------------------------------------------------------

    def _handle(self, state: Dict[str, Any],
                message: Dict[str, Any]) -> Dict[str, Any]:
        """One request → one reply, under the coordinator lock."""
        kind = message.get("type")
        board = self._board
        journal = self._journal
        now = time.monotonic()
        if kind == "hello":
            worker = str(message.get("worker", "?"))
            state["worker"] = worker
            claimed = message.get("spec")
            if claimed is not None and claimed != self._spec.digest():
                return {"type": "drain", "reason": "spec_mismatch"}
            pid = message.get("pid")
            if isinstance(pid, int):
                self._worker_pids[worker] = pid
                self._write_state("running")
            return {"type": "welcome", "lease_ttl": self._ttl,
                    "poll": self._poll}
        worker = state.get("worker")
        if worker is None:
            raise ProtocolError(f"{kind!r} before hello")
        if kind == "lease":
            if self._aborted or board is None or board.done():
                return {"type": "drain"}
            shard = board.lease(worker, now)
            if shard is None:
                return {"type": "wait", "poll": self._poll}
            self._write_state("running")
            return {"type": "grant", "shard": shard.shard_id,
                    "indices": list(shard.indices),
                    "attempt": shard.attempts, "ttl": self._ttl}
        if kind == "heartbeat":
            ok = (board is not None
                  and board.heartbeat(worker, int(message["shard"]), now))
            return {"type": "ack", "ok": ok}
        if kind == "done":
            shard_id = int(message["shard"])
            if message.get("error") is not None and journal is not None:
                journal.record(K.CAMPAIGN_WORKER_ERROR, shard=shard_id,
                               worker=worker,
                               error=str(message["error"]))
            if board is not None:
                board.complete(worker, shard_id)
            self._write_state("running")
            return {"type": "ack", "ok": True}
        raise ProtocolError(f"unknown message type {kind!r}")

    def _serve_connection(self, conn: socket.socket) -> None:
        state: Dict[str, Any] = {}
        with self._lock:
            self._connections += 1
        try:
            while True:
                message = recv_message(conn)
                if message is None:
                    break
                with self._lock:
                    reply = self._handle(state, message)
                send_message(conn, reply)
        except (ProtocolError, OSError):
            pass
        finally:
            with self._lock:
                self._connections -= 1
                worker = state.get("worker")
                if worker is not None and self._board is not None:
                    reclaimed = self._board.release_worker(worker)
                    if reclaimed and self._journal is not None:
                        self._journal.record(
                            K.CAMPAIGN_WORKER_ERROR, worker=worker,
                            reason="worker_disconnect",
                            shards=[s.shard_id for s in reclaimed])
            try:
                conn.close()
            except OSError:
                pass

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: sweep over
            threading.Thread(target=self._serve_connection,
                             args=(conn,), daemon=True).start()

    # ------------------------------------------------------------------
    # worker processes
    # ------------------------------------------------------------------

    def _spawn_workers(self) -> None:
        for number in range(1, self._workers + 1):
            name = f"w{number}"
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.core.fabric.worker",
                 "--connect", f"{self._host}:{self._port}",
                 "--dir", str(self._dir), "--worker", name],
                env=_worker_env())
            self._procs.append(proc)

    def _reap_workers(self) -> None:
        deadline = time.monotonic() + DRAIN_TIMEOUT_S
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def _workers_lost(self) -> bool:
        """True when no worker can ever lease again this attempt."""
        if self._connections:
            return False
        if self._spawn:
            return bool(self._procs) and all(
                proc.poll() is not None for proc in self._procs)
        return False

    # ------------------------------------------------------------------
    # the attempt
    # ------------------------------------------------------------------

    def run(self) -> List[RunResult]:
        """Execute (or resume) the sweep; returns results in input order."""
        self._dir.mkdir(parents=True, exist_ok=True)
        self._persist_spec()
        spec = self._spec
        store = ResultStore(self._dir / "store")
        keys = spec.store_keys(store)
        todo = store.missing(keys)
        journal = Journal(self._dir / "journals" / "coordinator.jsonl")
        self._journal = journal
        failed: Optional[BaseException] = None
        status = "ok"
        findings: Optional[int] = None
        todo_set = set(todo)
        try:
            journal.start(
                "campaign", backend="sockets", seed=spec.seed,
                configs=len(spec.configs), workers=self._workers,
                telemetry=spec.telemetry, lint=spec.lint,
                oracle=getattr(spec.oracle, "__qualname__", None),
                body=spec.body_label(), resumed=len(todo) < len(spec.configs),
                **{k: v for k, v in spec.meta.items()
                   if k not in ("backend", "seed", "configs", "workers")})
            # re-journal completed rows so this attempt's record (the
            # last campaign.start segment) is a full flight on its own
            for index, key in enumerate(keys):
                if index in todo_set:
                    continue
                cached = store.get(key)
                if cached is not None:
                    journal.record(K.CAMPAIGN_RUN_END,
                                   **_run_end_payload(index, cached,
                                                      cached_hit=True))
            if todo:
                self._run_leased(spec, store, keys, todo, journal)
            remaining = store.missing(keys)
            if remaining:
                status = "workers_lost"
                raise FabricError(
                    f"all workers lost with {len(remaining)} of "
                    f"{len(spec.configs)} configurations incomplete; "
                    f"resume with: repro sweep --resume {self._dir}",
                    status="workers_lost")
            results = store.load_all(keys)
            findings = sum(1 for result in results if not result.ok())
            return results
        except BaseException as err:
            failed = err
            raise
        finally:
            if failed is not None and status == "ok":
                status = getattr(failed, "status", "failed")
            executed = len(todo) - len(store.missing(keys))
            payload: Dict[str, Any] = {
                "status": status, "executed": executed,
                "cached": len(spec.configs) - len(todo),
                "stolen": (self._board.stolen
                           if self._board is not None else 0),
                "expired": (self._board.expired
                            if self._board is not None else 0),
            }
            if findings is not None:
                payload["findings"] = findings
            journal.record(K.CAMPAIGN_END, **payload)
            journal.close()
            self._write_state(status)

    def _run_leased(self, spec: SweepSpec, store: ResultStore,
                    keys: List[str], todo: List[int],
                    journal: Journal) -> None:
        """Shard the remainder, serve leases, wait for the board."""
        exec_keys = spec.execution_prefix_keys()
        shards = partition_shards(
            todo, exec_keys if exec_keys is not None
            else [None] * len(spec.configs),
            workers=self._workers, shard_size=self._shard_size)
        self._board = LeaseBoard(shards, ttl=self._ttl)
        self._listener = socket.create_server((self._host, 0),
                                              backlog=self._workers * 2)
        self._port = self._listener.getsockname()[1]
        self._write_state("running")
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        if self._spawn:
            self._spawn_workers()
        try:
            with journal.phase("dispatch", shards=len(shards),
                               workers=self._workers):
                while True:
                    with self._lock:
                        if self._board.done():
                            break
                        expired = self._board.expire(time.monotonic())
                        for shard in expired:
                            journal.record(
                                K.CAMPAIGN_WORKER_ERROR,
                                shard=shard.shard_id,
                                reason="lease_expired")
                        if self._workers_lost():
                            self._aborted = True
                            break
                    time.sleep(self._poll)
        finally:
            if not self._aborted:
                self._reap_workers()
            listener, self._listener = self._listener, None
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass
            if self._aborted:
                for proc in self._procs:
                    if proc.poll() is None:
                        proc.kill()
                        proc.wait()


def run_sockets(spec: SweepSpec, fabric_dir: Union[str, Path], *,
                workers: int = 2, ttl: float = DEFAULT_TTL_S,
                poll: float = DEFAULT_POLL_S, spawn: bool = True,
                shard_size: Optional[int] = None) -> List[RunResult]:
    """One sockets-backend sweep attempt (see :class:`FabricCoordinator`)."""
    coordinator = FabricCoordinator(
        spec, fabric_dir, workers=workers, ttl=ttl, poll=poll,
        spawn=spawn, shard_size=shard_size)
    return coordinator.run()
