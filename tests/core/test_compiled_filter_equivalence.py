"""Paper filter scripts behave identically compiled and freshly parsed.

The compile-once engine must be invisible at the PFI layer: a generated
campaign script run through ``TclishFilter(compiled=True)`` (the default)
and ``TclishFilter(compiled=False)`` against the same message stream must
deliver the same messages, hold the same interpreter state, and print the
same output.
"""

import pytest

from repro.core import TclishFilter
from repro.core.genscripts import generate_campaign, tcp_spec

from tests.core.conftest import Harness


def _find_script(name):
    for script in generate_campaign(tcp_spec()):
        if script.name == name:
            return script
    raise AssertionError(f"no generated script named {name}")


def _run_stream(script, compiled, kinds):
    """Install the filter on a fresh harness, replay the stream."""
    harness = Harness()
    tclish = TclishFilter(script.tclish_source,
                          init_script=script.tclish_init,
                          name=script.name, compiled=compiled)
    harness.pfi.set_receive_filter(tclish)
    for kind in kinds:
        harness.send_up(kind)
    harness.run(until=60.0)
    delivered = [m.meta["type"] for m in harness.top.received]
    return delivered, tclish.interp.globals, tclish.interp.output_lines


PAPER_SCRIPTS = ["reorder_ack_receive", "crash_after_20_receive",
                 "drop_ack_receive"]


class TestCompiledFilterEquivalence:
    @pytest.mark.parametrize("name", PAPER_SCRIPTS)
    def test_generated_script_equivalent(self, name):
        script = _find_script(name)
        kinds = (["DATA", "ACK"] * 20) + ["ACK"] * 5
        compiled = _run_stream(script, True, kinds)
        fresh = _run_stream(script, False, kinds)
        assert compiled == fresh

    def test_stateful_counting_filter_equivalent(self):
        source = (
            'incr seen\n'
            'set type [msg_type cur_msg]\n'
            'if {$type eq "ACK"} {\n'
            '    incr acks\n'
            '    if {$acks % 3 == 0} { xDrop cur_msg }\n'
            '}\n'
            'puts "$seen/$acks"')
        init = "set seen 0; set acks 0"
        kinds = ["ACK", "DATA", "ACK", "ACK", "ACK", "DATA", "ACK", "ACK"]
        results = []
        for compiled in (True, False):
            harness = Harness()
            tclish = TclishFilter(source, init_script=init, compiled=compiled)
            harness.pfi.set_receive_filter(tclish)
            for kind in kinds:
                harness.send_up(kind)
            results.append((
                [m.meta["type"] for m in harness.top.received],
                tclish.interp.globals,
                tclish.interp.output_lines,
            ))
        assert results[0] == results[1]
        # sanity: the filter actually dropped every third ACK
        assert results[0][0].count("ACK") == 4

    def test_compiled_filter_reuses_cache_across_messages(self):
        script = _find_script("crash_after_20_receive")
        harness = Harness()
        tclish = TclishFilter(script.tclish_source,
                              init_script=script.tclish_init)
        harness.pfi.set_receive_filter(tclish)
        for _ in range(30):
            harness.send_up("DATA")
        stats = tclish.interp.stats()
        assert stats["cache_hits"] >= 30
