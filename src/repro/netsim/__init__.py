"""Deterministic discrete-event network simulator.

This package is the substrate beneath every experiment in the repository.
The paper ran its experiments against real machines on a campus LAN; we run
them against a virtual network driven by a virtual clock so that a 112-hour
keep-alive experiment completes in milliseconds and every run is exactly
reproducible.

The pieces:

- :class:`~repro.netsim.scheduler.Scheduler` -- the virtual clock and event
  heap.  Everything in the repository that needs time (TCP retransmission
  timers, GMP heartbeats, PFI message delays) schedules callbacks here.
- :class:`~repro.netsim.timer.Timer` -- restartable one-shot timer built on
  the scheduler, the idiom protocol code uses.
- :class:`~repro.netsim.link.Link` -- a unidirectional point-to-point pipe
  with latency, jitter, probabilistic loss, and an up/down switch (the
  "unplug the ethernet" experiment).
- :class:`~repro.netsim.node.Node` -- an addressable endpoint that owns a
  protocol stack.
- :class:`~repro.netsim.network.Network` -- a mesh of nodes and links with
  partition support.
- :class:`~repro.netsim.trace.TraceRecorder` -- timestamped event capture
  used by the experiment harness to reconstruct the paper's tables.
"""

from repro.netsim.link import Link
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.scheduler import Event, Scheduler, SchedulerError
from repro.netsim.timer import Timer, TimerTable
from repro.netsim.trace import TraceEntry, TraceRecorder

__all__ = [
    "Event",
    "Link",
    "Network",
    "Node",
    "Scheduler",
    "SchedulerError",
    "Timer",
    "TimerTable",
    "TraceEntry",
    "TraceRecorder",
]
