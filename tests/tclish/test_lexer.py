"""Unit tests for tclish command/word splitting."""

import pytest

from repro.core.tclish.errors import TclError
from repro.core.tclish.lexer import split_commands, split_words, strip_braces


class TestSplitCommands:
    def test_newline_separates(self):
        assert split_commands("set a 1\nset b 2") == ["set a 1", "set b 2"]

    def test_semicolon_separates(self):
        assert split_commands("set a 1; set b 2") == ["set a 1", "set b 2"]

    def test_empty_commands_dropped(self):
        assert split_commands("\n\n;;set a 1;;\n") == ["set a 1"]

    def test_comment_at_command_start(self):
        cmds = split_commands("# a comment\nset a 1")
        assert cmds == ["set a 1"]

    def test_comment_after_semicolon(self):
        assert split_commands("set a 1; # trailing") == ["set a 1"]

    def test_hash_inside_word_not_comment(self):
        assert split_commands("set a x#y") == ["set a x#y"]

    def test_braces_protect_newlines(self):
        cmds = split_commands("if {$x} {\n  set y 1\n}")
        assert len(cmds) == 1

    def test_brackets_protect_separators(self):
        cmds = split_commands("set a [cmd one; cmd two]")
        assert len(cmds) == 1

    def test_quotes_protect_semicolons(self):
        assert split_commands('set a "x; y"') == ['set a "x; y"']

    def test_unbalanced_brace_raises(self):
        with pytest.raises(TclError):
            split_commands("set a {unclosed")

    def test_unbalanced_close_brace_raises(self):
        with pytest.raises(TclError):
            split_commands("set a }")

    def test_unbalanced_bracket_raises(self):
        with pytest.raises(TclError):
            split_commands("set a [cmd")

    def test_unterminated_quote_raises(self):
        with pytest.raises(TclError):
            split_commands('set a "oops')

    def test_escaped_quote_in_quotes(self):
        assert split_commands(r'set a "x\"y"') == [r'set a "x\"y"']


class TestSplitWords:
    def test_simple_words(self):
        assert split_words("set a 1") == ["set", "a", "1"]

    def test_braced_word_kept_whole(self):
        assert split_words("if {$x > 1} {body}") == ["if", "{$x > 1}",
                                                     "{body}"]

    def test_nested_braces(self):
        assert split_words("proc f {} {if {1} {x}}") == [
            "proc", "f", "{}", "{if {1} {x}}"]

    def test_quoted_word(self):
        assert split_words('puts "hello world"') == ["puts",
                                                     '"hello world"']

    def test_bracket_in_bare_word(self):
        assert split_words("set a [cmd x y]") == ["set", "a", "[cmd x y]"]

    def test_bracket_with_spaces_stays_one_word(self):
        assert split_words("expr {[llength $l] + 1}") == [
            "expr", "{[llength $l] + 1}"]

    def test_multiple_spaces_collapsed(self):
        assert split_words("a   b\t c") == ["a", "b", "c"]

    def test_unmatched_brace_in_word_raises(self):
        with pytest.raises(TclError):
            split_words("set a {x")


class TestStripBraces:
    def test_strips_braces(self):
        assert strip_braces("{hello}") == "hello"

    def test_strips_quotes(self):
        assert strip_braces('"hello"') == "hello"

    def test_bare_word_unchanged(self):
        assert strip_braces("hello") == "hello"

    def test_single_char_unchanged(self):
        assert strip_braces("{") == "{"
