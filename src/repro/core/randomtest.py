"""Randomized campaign execution and scorecards.

The paper positions its approach as supporting "deterministic and
probabilistic testing": the deterministic side is the per-table
experiments; this module is the probabilistic side.  It takes a generated
script battery (:mod:`repro.core.genscripts`), samples (script, seed)
trials, runs a caller-supplied trial function, and aggregates a
pass/fail **scorecard** per failure model -- the statistical complement
the related-work section contrasts with fault-coverage evaluation.

The trial function owns all protocol knowledge::

    def trial(script, seed) -> TrialOutcome:
        ... build system, install script.python_filter, run, check ...

Determinism: the runner's own sampling is seeded, and trial seeds are
derived from (campaign seed, script name, repetition), so a scorecard is
exactly reproducible and insensitive to script-list reordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.core.faults import FailureModel
from repro.core.genscripts import GeneratedScript


@dataclass
class TrialOutcome:
    """What one trial observed."""

    passed: bool
    detail: str = ""


@dataclass
class TrialRecord:
    """One executed trial."""

    script: GeneratedScript
    seed: int
    outcome: TrialOutcome


class Scorecard:
    """Aggregated pass/fail results for a campaign run."""

    def __init__(self):
        self.records: List[TrialRecord] = []

    def add(self, record: TrialRecord) -> None:
        self.records.append(record)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.records if r.outcome.passed)

    def pass_rate(self) -> float:
        """Fraction of trials passed (1.0 for an empty campaign)."""
        return self.passed / self.total if self.records else 1.0

    def by_model(self) -> Dict[FailureModel, Tuple[int, int]]:
        """Map failure model -> (passed, total)."""
        counts: Dict[FailureModel, List[int]] = {}
        for record in self.records:
            entry = counts.setdefault(record.script.failure_model, [0, 0])
            entry[1] += 1
            if record.outcome.passed:
                entry[0] += 1
        return {model: (p, t) for model, (p, t) in counts.items()}

    def failures(self) -> List[TrialRecord]:
        """Trials that did not pass, in execution order."""
        return [r for r in self.records if not r.outcome.passed]

    def failing_scripts(self) -> List[str]:
        """Distinct script names with at least one failing trial."""
        names = []
        for record in self.failures():
            if record.script.name not in names:
                names.append(record.script.name)
        return names

    def render(self, title: str = "campaign scorecard") -> str:
        """A per-model summary table."""
        rows = []
        for model, (p, t) in sorted(self.by_model().items(),
                                    key=lambda kv: kv[0].value):
            rows.append([model.value, f"{p}/{t}",
                         "all passed" if p == t else
                         ", ".join(n for n in self.failing_scripts()
                                   if _model_of(self, n) == model)])
        rows.append(["TOTAL", f"{self.passed}/{self.total}", ""])
        return render_table(title, ["Failure model", "Passed", "Failures"],
                            rows)


def _model_of(scorecard: Scorecard, script_name: str) -> FailureModel:
    for record in scorecard.records:
        if record.script.name == script_name:
            return record.script.failure_model
    raise KeyError(script_name)


TrialFn = Callable[[GeneratedScript, int], TrialOutcome]


def run_campaign(scripts: Sequence[GeneratedScript], trial: TrialFn, *,
                 repetitions: int = 1, seed: int = 0,
                 sample: Optional[int] = None) -> Scorecard:
    """Run every script (or a random sample) ``repetitions`` times.

    ``sample`` draws that many scripts (without replacement, seeded) for
    quick probabilistic sweeps over large campaigns.

    .. deprecated::
        This runner predates the conformance oracle layer and survives
        as a thin back-compat wrapper: its sampling and per-trial seed
        derivation now delegate to :func:`repro.oracle.grammar
        .seeded_sample` and :func:`repro.oracle.grammar.trial_seed` (the
        same helpers the fuzzer uses), so the two sides cannot drift
        again.  New probabilistic campaigns should prefer
        :func:`repro.oracle.fuzz.run_fuzz`, which adds coverage
        guidance, oracle verdicts, and shrinking on top of the same
        deterministic sampling.
    """
    from repro.oracle.grammar import seeded_sample, trial_seed
    chosen = (seeded_sample(scripts, sample, seed=seed)
              if sample is not None else list(scripts))
    scorecard = Scorecard()
    for script in chosen:
        for repetition in range(repetitions):
            run_seed = trial_seed(seed, script.name, repetition)
            outcome = trial(script, run_seed)
            scorecard.add(TrialRecord(script=script, seed=run_seed,
                                      outcome=outcome))
    return scorecard
