"""Cross-script analysis of a send/receive filter pair.

The paper wires two interpreters per PFI layer -- one for the send path,
one for the receive path -- and gives them two coordination channels:

- ``peer_set k v`` writes variable ``k`` into the *other* interpreter's
  state, where the peer reads it with ``peer_get k``;
- ``sync_set`` / ``sync_get`` share flags across nodes through the
  experiment-wide :class:`~repro.core.sync.ScriptSync`.

Key typos across that boundary are invisible to single-script analysis
(each half is locally fine), so :func:`analyze_pair` checks the two
summaries against each other: a ``peer_get`` whose key no peer ever sets
reads its default forever; a ``peer_set`` nobody reads is dead
coordination code.  Sync flags may legitimately be set or read by the
Python harness or scripts on other nodes, so those findings stay
warnings too.
"""

from __future__ import annotations

from typing import List

from repro.core.tclish.lint import diagnostics as diag
from repro.core.tclish.lint.checks import ScriptSummary
from repro.core.tclish.lint.diagnostics import Diagnostic


def analyze_pair(send: ScriptSummary, receive: ScriptSummary
                 ) -> List[Diagnostic]:
    """Cross-checks between an analyzed send/receive script pair."""
    out: List[Diagnostic] = []
    _check_peer(out, send, receive, "send", "receive")
    _check_peer(out, receive, send, "receive", "send")
    _check_sync(out, send, receive)
    return out


def _check_peer(out: List[Diagnostic], writer: ScriptSummary,
                reader: ScriptSummary, writer_name: str,
                reader_name: str) -> None:
    for key, (line, col) in sorted(writer.peer_set.items()):
        if key not in reader.peer_get:
            out.append(diag.make(
                "SL009", line, col,
                f'peer_set key "{key}" is never peer_get by the '
                f"{reader_name} script",
                _suggest_key(key, reader.peer_get),
                script=writer_name))
    for key, (line, col) in sorted(reader.peer_get.items()):
        if key not in writer.peer_set:
            out.append(diag.make(
                "SL009", line, col,
                f'peer_get key "{key}" is never peer_set by the '
                f"{writer_name} script (the default value is always "
                f"returned)",
                _suggest_key(key, writer.peer_set),
                script=reader_name))


def _check_sync(out: List[Diagnostic], send: ScriptSummary,
                receive: ScriptSummary) -> None:
    set_keys = set(send.sync_set) | set(receive.sync_set)
    get_keys = set(send.sync_get) | set(receive.sync_get)
    for label, summary in (("send", send), ("receive", receive)):
        for key, (line, col) in sorted(summary.sync_get.items()):
            if key not in set_keys:
                out.append(diag.make(
                    "SL010", line, col,
                    f'sync_get key "{key}" is never sync_set by this '
                    f"script pair",
                    "fine if another node or the harness sets it; a typo "
                    "otherwise", script=label))
        for key, (line, col) in sorted(summary.sync_set.items()):
            if key not in get_keys:
                out.append(diag.make(
                    "SL010", line, col,
                    f'sync_set key "{key}" is never sync_get by this '
                    f"script pair",
                    "fine if another node or the harness reads it; a "
                    "typo otherwise", script=label))


def _suggest_key(key: str, candidates) -> str:
    import difflib
    matches = difflib.get_close_matches(key, list(candidates), n=1)
    if matches:
        return f'did you mean "{matches[0]}"?'
    return ""
