"""The TCP test rig of Figure 3.

One machine runs a vendor TCP implementation; the other is "the x-Kernel
machine" whose stack carries the PFI layer between TCP and IP::

    vendor machine (addr 1)        x-kernel machine (addr 2)
    +----------------+             +----------------+
    |   vendor TCP   |             |  x-kernel TCP  |
    +----------------+             +----------------+
    |       IP       |             |    PFI layer   |   <- filter scripts
    +----------------+             +----------------+
    |     anchor     |             |       IP       |
    +----------------+             +----------------+
                                   |     anchor     |
                                   +----------------+

"In the tests, connections are opened between the vendor TCP
implementations and the x-Kernel TCP."  :func:`build_tcp_testbed` wires
all of this; :func:`open_connection` performs the handshake;
:func:`stream_from_vendor` generates the steady data steam the
retransmission experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import PFILayer, make_env
from repro.core.orchestrator import ExperimentEnv
from repro.tcp import (TCPConnection, TCPProtocol, VendorProfile, XKERNEL,
                       tcp_stubs)
from repro.tcp.ip import IPProtocol
from repro.xkernel.stack import NodeAnchor, ProtocolStack

VENDOR_ADDR = 1
XKERNEL_ADDR = 2
SERVER_PORT = 80
CLIENT_PORT = 5000


@dataclass
class TCPTestbed:
    """Everything an experiment needs to script a TCP run."""

    env: ExperimentEnv
    vendor_tcp: TCPProtocol
    xkernel_tcp: TCPProtocol
    pfi: PFILayer
    vendor_stack: ProtocolStack
    xkernel_stack: ProtocolStack

    @property
    def trace(self):
        return self.env.trace

    @property
    def scheduler(self):
        return self.env.scheduler


def build_tcp_testbed(vendor: VendorProfile, *, seed: int = 0,
                      latency: float = 0.002,
                      xk_profile: VendorProfile = XKERNEL,
                      env: ExperimentEnv = None) -> TCPTestbed:
    """Construct the two-machine rig with the PFI layer on the x-Kernel side.

    ``env`` reuses an existing environment (a :class:`~repro.core
    .orchestrator.Campaign` hands each body one) instead of building a
    private one, so campaign-level machinery -- telemetry, the trace on
    ``RunResult``, the conformance oracle -- observes the testbed's run.
    """
    if env is None:
        env = make_env(seed=seed, default_latency=latency)
    vendor_node = env.network.add_node("vendor", VENDOR_ADDR)
    xk_node = env.network.add_node("xkernel", XKERNEL_ADDR)
    stubs = tcp_stubs()

    vendor_tcp = TCPProtocol(env.scheduler, vendor, local_address=VENDOR_ADDR,
                             trace=env.trace, host="vendor")
    vendor_stack = ProtocolStack("vendor").build(
        vendor_tcp, IPProtocol(VENDOR_ADDR), NodeAnchor(vendor_node))

    xk_tcp = TCPProtocol(env.scheduler, xk_profile, local_address=XKERNEL_ADDR,
                         trace=env.trace, host="xkernel")
    pfi = PFILayer("pfi", env.scheduler, stubs, trace=env.trace,
                   sync=env.sync, dist=env.dist("pfi"), node="xkernel")
    xkernel_stack = ProtocolStack("xkernel").build(
        xk_tcp, pfi, IPProtocol(XKERNEL_ADDR), NodeAnchor(xk_node))

    return TCPTestbed(env=env, vendor_tcp=vendor_tcp, xkernel_tcp=xk_tcp,
                      pfi=pfi, vendor_stack=vendor_stack,
                      xkernel_stack=xkernel_stack)


def open_connection(testbed: TCPTestbed, *,
                    settle: float = 0.5) -> "tuple[TCPConnection, TCPConnection]":
    """Open vendor -> x-Kernel connection; returns (client, server)."""
    server = testbed.xkernel_tcp.listen(SERVER_PORT)
    client = testbed.vendor_tcp.open_connection(
        local_port=CLIENT_PORT, remote_address=XKERNEL_ADDR,
        remote_port=SERVER_PORT)
    client.connect()
    testbed.env.run_until(testbed.env.scheduler.now + settle)
    if not client.established:
        raise RuntimeError("handshake did not complete")
    return client, server


def stream_from_vendor(testbed: TCPTestbed, client: TCPConnection, *,
                       segments: int, interval: float = 0.5,
                       size: int = 512, start_delay: float = 0.0) -> None:
    """Schedule a steady application write stream on the vendor machine.

    Writes keep being scheduled even if the connection dies mid-run; the
    connection API tolerates that by dropping the write (matching an app
    whose ``write()`` starts failing after a reset).
    """
    for i in range(segments):
        testbed.scheduler.schedule(start_delay + i * interval,
                                   _stream_write, client, i, size)


def _stream_write(conn: TCPConnection, n: int, size: int) -> None:
    """One scheduled application write (module-level so a checkpointed
    scheduler entry deep-copies cleanly; a closure would keep writing
    into the original connection after a fork)."""
    if conn.state in ("ESTABLISHED", "CLOSE_WAIT"):
        conn.send(bytes([65 + (n % 26)]) * size)
