"""The group membership daemon (gmd).

Implements the strong group membership protocol the paper tested:
"membership changes are seen in the same order by all members.  ...  a
group of processors have a unique leader based on the processor id of each
member.  When a membership change is detected by the leader of the group,
it executes a 2-phase protocol to ensure that all members agree on the
membership."

Protocol sketch (one daemon per machine, lowest address leads):

- members heartbeat every member of their view **including themselves**;
- a missed heartbeat makes the observer report the peer dead to the
  leader (or, if the leader itself went quiet, to the crown prince, who
  assumes leadership);
- the leader proposes a new view with ``MEMBERSHIP_CHANGE``; recipients
  leave their old group (entering ``IN_TRANSITION``, all timers except the
  membership-change timer unset), ACK, and wait for ``COMMIT``;
- the leader commits to whoever ACKed; members that never see the COMMIT
  time out, fall back to a singleton group, and try to rejoin with
  ``PROCLAIM`` messages;
- a ``PROCLAIM`` reaching a non-leader is forwarded to the leader, who
  answers the *originator* with a ``PROCLAIM`` of its own (if the leader
  has the lower address) or a ``JOIN``.

The four historical bugs of the student implementation are injected where
they lived (see :mod:`repro.gmp.bugs`); with ``BugFlags()`` (all off) the
daemon implements the fixed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.stubs import PacketStubs
from repro.gmp import messages as m
from repro.gmp.bugs import BugFlags, FIXED
from repro.gmp.messages import GmpMessage
from repro.gmp.timers import GmpTimerTable
from repro.gmp.views import GroupView, singleton_view
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.netsim import kinds as K

STABLE = "STABLE"
COLLECTING = "COLLECTING"       # leader running phase one
IN_TRANSITION = "IN_TRANSITION"  # member awaiting COMMIT


@dataclass(frozen=True)
class GmpTiming:
    """Timer constants for the daemon."""

    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 3.5
    proclaim_interval: float = 2.0
    ack_collect_timeout: float = 1.5
    mc_timeout: float = 5.0          # IN_TRANSITION wait for COMMIT


class _Guarded:
    """A daemon timer callback wrapped with the suspend/defer gate.

    Carries a bound method plus its arguments; while the daemon is
    suspended, invocations queue themselves on ``daemon._deferred`` and
    re-run on resume.  A class (not a closure) so a checkpointed timer
    deep-copies into the forked daemon -- ``copy.deepcopy`` treats
    closures as atomic values that would keep pointing at the original.
    """

    __slots__ = ("callback", "args", "priority")

    def __init__(self, callback: Callable[..., None], args: tuple = (),
                 priority: int = 0):
        self.callback = callback
        self.args = tuple(args)
        self.priority = priority

    def __call__(self) -> None:
        daemon = self.callback.__self__
        if daemon._suspended:
            daemon._deferred.append((self.priority, self))
            return
        self.callback(*self.args)

    def __repr__(self) -> str:
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"_Guarded({name}{self.args!r})"


class Daemon(Protocol):
    """One group membership daemon, the top layer of its host's stack."""

    def __init__(self, address: int, scheduler: Scheduler,
                 world: Sequence[int], *,
                 bugs: BugFlags = FIXED,
                 timing: GmpTiming = GmpTiming(),
                 trace: Optional[TraceRecorder] = None,
                 name: str = ""):
        super().__init__(name or f"gmd{address}")
        self.address = address
        self.scheduler = scheduler
        self.world = tuple(sorted(set(world)))
        self.bugs = bugs
        self.timing = timing
        self.trace = trace

        self.view: GroupView = singleton_view(address)
        self.status = STABLE
        self.suspected: Set[int] = set()
        self.marked_self_down = False
        self._max_gid = 0
        self._started = False

        # leader phase-one state
        self._pending: Optional[Dict] = None
        self._queued_joiners: Set[int] = set()

        # member transition state
        self._transition_gid: Optional[int] = None
        self._transition_leader: Optional[int] = None

        self.timers = GmpTimerTable(
            scheduler, inverted_unregister=bugs.inverted_timer_unregister)

        # SIGTSTP emulation
        self._suspended = False
        self._deferred: List[Callable[[], None]] = []

        # peers we have provably heard from (directly, or as past
        # co-members), and peers that were committed into a view with us:
        # the latter is the set a leader may proclaim to after a
        # partition heals
        self._known: Set[int] = set()
        self._ever_members: Set[int] = set()

        # counters for experiments
        self.views_adopted: List[GroupView] = []
        self.sent_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Boot the daemon: singleton group, heartbeats, proclaims."""
        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        self._adopt_view(singleton_view(self.address, group_id=0),
                         announce=False)
        self._send_proclaims()

    def leave(self) -> None:
        """Depart the group gracefully ("a member may depart from a group
        due to a normal shutdown, such as a scheduled maintenance").

        The departing daemon announces its own departure to the acting
        leader so the membership change starts immediately rather than
        after a heartbeat timeout, then stops participating.
        """
        self._record(K.GMP_LEAVE)
        others = self._alive_others()
        if others:
            self._send(m.DEAD_REPORT, min(others), subject=self.address)
        self.timers.stop_all()
        self._started = False

    def suspend(self) -> None:
        """Emulate SIGTSTP: no progress, timers defer until resume."""
        self._suspended = True
        self._record(K.GMP_SUSPENDED)

    def resume(self) -> None:
        """Emulate fg: deferred timer expirations fire immediately.

        The local-heartbeat (self) expectation runs first: the paper's
        suspended daemon exhibited "identical behaviour" to the
        dropped-self-heartbeat case, meaning its own missed heartbeats
        were what it acted on when the process woke up.
        """
        self._suspended = False
        self._record(K.GMP_RESUMED)
        deferred, self._deferred = self._deferred, []
        deferred.sort(key=lambda entry: entry[0])
        for _priority, callback in deferred:
            callback()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.view.leader == self.address

    @property
    def is_crown_prince(self) -> bool:
        return self.view.crown_prince == self.address

    def _alive_others(self) -> List[int]:
        """View members (excluding self) not currently suspected."""
        return [mm for mm in self.view.members
                if mm != self.address and mm not in self.suspected]

    def _acting_leader(self) -> int:
        """Lowest unsuspected member: the leader, or whoever must take
        over once the leader (and possibly the crown prince) are gone."""
        return min([self.address] + self._alive_others())

    def _next_gid(self) -> int:
        self._max_gid += 1
        return self._max_gid

    def _note_gid(self, gid: int) -> None:
        self._max_gid = max(self._max_gid, gid)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def _send(self, kind: str, dst: int, *, originator: Optional[int] = None,
              subject: int = -1, group_id: int = 0,
              members: Tuple[int, ...] = (), reliable: bool = True) -> None:
        gmsg = GmpMessage(kind=kind, sender=self.address,
                          originator=self.address if originator is None
                          else originator,
                          subject=subject, group_id=group_id,
                          members=members, down=self.marked_self_down)
        msg = Message(payload=gmsg)
        msg.meta["dst"] = dst
        msg.meta["src"] = self.address
        msg.meta["reliable"] = reliable and kind != m.HEARTBEAT
        self.sent_counts[kind] = self.sent_counts.get(kind, 0) + 1
        self._record(K.GMP_SEND, msg_kind=kind, dst=dst,
                     originator=gmsg.originator, subject=subject,
                     group_id=group_id)
        self.send_down(msg)

    def _send_proclaims(self) -> None:
        for peer in self.world:
            if peer != self.address:
                self._send(m.PROCLAIM, peer)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _guard(self, callback: Callable[..., None], *args,
               priority: int = 0) -> "_Guarded":
        """Defer timer callbacks that fire while suspended.

        ``callback`` must be a bound method of this daemon; extra
        positional ``args`` are forwarded on invocation.  ``priority``
        orders deferred callbacks on resume (lower first; ties keep
        expiry order).  Returns a :class:`_Guarded` instance rather than
        a closure so checkpointed timers deep-copy into the forked
        daemon instead of referencing the original one.
        """
        return _Guarded(callback, args, priority)

    def _arm_heartbeat_send(self) -> None:
        self.timers.register("heartbeat_send", "send",
                             self.timing.heartbeat_interval,
                             self._guard(self._on_heartbeat_send))

    def _arm_proclaim(self) -> None:
        self.timers.register("proclaim", "tick",
                             self.timing.proclaim_interval,
                             self._guard(self._on_proclaim_tick))

    def _arm_expect(self, member: int) -> None:
        priority = -1 if member == self.address else 0
        self.timers.register("heartbeat_expect", member,
                             self.timing.heartbeat_timeout,
                             self._guard(self._on_expect_expired, member,
                                         priority=priority))

    def _arm_all_expects(self) -> None:
        # self first, then the rest by address: under the inverted-
        # unregister bug only the first-registered timer is removed, so
        # this ordering is what leaves a *peer's* timer armed in
        # transition -- the exact symptom of the paper's Experiment 4.
        self._arm_expect(self.address)
        for member in self.view.members:
            if member != self.address:
                self._arm_expect(member)

    def _unset_timers_for_transition(self) -> None:
        """Leaving the old group: every timer except mc_timeout must go."""
        self.timers.unregister("heartbeat_expect")
        self.timers.unregister("heartbeat_send")
        self.timers.unregister("proclaim")
        self.timers.unregister("ack_collect")

    # ------------------------------------------------------------------
    # heartbeats and failure detection
    # ------------------------------------------------------------------

    def _on_heartbeat_send(self) -> None:
        for member in self.view.members:
            self._send(m.HEARTBEAT, member, reliable=False)
        if self.marked_self_down and self.bugs.self_death:
            # "it would continue to send bad information to the other gmds"
            for member in self.view.members:
                if member != self.address:
                    self._send(m.DEAD_REPORT, member, subject=self.address)
        self._arm_heartbeat_send()

    def _on_proclaim_tick(self) -> None:
        if self.status == STABLE:
            if self.view.is_singleton:
                self._send_proclaims()
            elif self.is_leader:
                # a leader keeps proclaiming to *former co-members* that
                # fell out of its view, which is what re-merges groups
                # after a partition heals.  Machines it never admitted
                # (e.g. a joiner whose ACKs are being dropped) are not
                # courted this way -- they must keep proclaiming
                # themselves, as in the paper's Table 5 ACK-drop cycle.
                lost = self._ever_members - set(self.view.members)
                for peer in sorted(lost):
                    if peer in self.world:
                        self._send(m.PROCLAIM, peer)
        self._arm_proclaim()

    def _on_expect_expired(self, member: int) -> None:
        self._record(K.GMP_HEARTBEAT_TIMEOUT, member=member,
                     status=self.status)
        if self.status == IN_TRANSITION:
            # a timer that should have been unset fired: the Experiment 4
            # signature of the inverted-unregister bug
            self._record(K.GMP_SPURIOUS_TIMEOUT, member=member)
            return
        if member == self.address:
            self._on_self_death()
            return
        if self.marked_self_down and self.bugs.self_death:
            # the historical daemon's state was wedged once it believed
            # itself dead: peer failures were re-armed and re-reported but
            # never acted on, so it stayed in the stale group forever and
            # "continued to send bad information to the other gmds"
            self._arm_expect(member)
            return
        self.suspected.add(member)
        self._arm_expect(member)  # keep watching; re-report if still quiet
        alive = self._alive_others()
        if not alive:
            self._become_singleton()
            return
        acting = self._acting_leader()
        if acting == self.address:
            # we are the lowest unsuspected member: the leader proper, or
            # the crown prince (or further down the line of succession)
            # taking over after the leader's heartbeats stopped
            if not self.is_leader:
                self._record(K.GMP_TAKEOVER, old_leader=self.view.leader)
            self._initiate_change(self.view.without(*self.suspected))
        else:
            self._send(m.DEAD_REPORT, acting, subject=member)

    def _on_self_death(self) -> None:
        """Heartbeats from ourselves stopped arriving."""
        if self.bugs.self_death:
            # the historical behaviour: tell everyone we died, mark
            # ourselves down, but stay in the group with stale state
            self._record(K.GMP_SELF_DEATH_BUG)
            self.marked_self_down = True
            for member in self.view.members:
                if member != self.address:
                    self._send(m.DEAD_REPORT, member, subject=self.address)
            self._arm_expect(self.address)
            return
        # fixed behaviour: we lost ourselves, so our timers/network are
        # unreliable; fall back to a singleton group and rejoin
        self._record(K.GMP_SELF_RESTART)
        self.marked_self_down = False
        self._become_singleton()

    # ------------------------------------------------------------------
    # membership change: leader side
    # ------------------------------------------------------------------

    def _initiate_change(self, proposed: Tuple[int, ...]) -> None:
        proposed = tuple(sorted(set(proposed) | {self.address}))
        if min(proposed) != self.address:
            return  # only the would-be leader runs the protocol
        if self._pending is not None:
            # already collecting; fold new intent into the next round
            self._queued_joiners.update(proposed)
            return
        gid = self._next_gid()
        self._pending = {"gid": gid, "proposed": set(proposed),
                         "acks": {self.address}}
        self.status = COLLECTING
        self._record(K.GMP_MC_SENT, group_id=gid, members=proposed)
        for member in proposed:
            if member != self.address:
                self._send(m.MEMBERSHIP_CHANGE, member, group_id=gid,
                           members=proposed)
        self.timers.register("ack_collect", gid,
                             self.timing.ack_collect_timeout,
                             self._guard(self._on_ack_collect_timeout, gid))
        if len(proposed) == 1:
            self._commit_change()

    def _on_ack(self, msg: GmpMessage) -> None:
        if self._pending is None or msg.group_id != self._pending["gid"]:
            return
        self._pending["acks"].add(msg.sender)
        if self._pending["acks"] >= self._pending["proposed"]:
            self._commit_change()

    def _on_nack(self, msg: GmpMessage) -> None:
        if self._pending is None or msg.group_id != self._pending["gid"]:
            return
        self._pending["proposed"].discard(msg.sender)
        if self._pending["acks"] >= self._pending["proposed"]:
            self._commit_change()

    def _on_ack_collect_timeout(self, gid: int) -> None:
        if self._pending is not None and self._pending["gid"] == gid:
            self._record(K.GMP_ACK_COLLECT_TIMEOUT, group_id=gid,
                         missing=sorted(self._pending["proposed"]
                                        - self._pending["acks"]))
            self._commit_change()

    def _commit_change(self) -> None:
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        self.timers.unregister("ack_collect", pending["gid"])
        final = tuple(sorted(pending["acks"] & pending["proposed"]
                             | {self.address}))
        self._record(K.GMP_COMMIT_SENT, group_id=pending["gid"],
                     members=final)
        for member in final:
            if member != self.address:
                self._send(m.COMMIT, member, group_id=pending["gid"],
                           members=final)
        self._adopt_view(GroupView(pending["gid"], final))
        if self._queued_joiners - set(final):
            joiners = tuple(self._queued_joiners)
            self._queued_joiners = set()
            self._initiate_change(self.view.with_added(*joiners))
        else:
            self._queued_joiners = set()

    # ------------------------------------------------------------------
    # membership change: member side
    # ------------------------------------------------------------------

    def _on_membership_change(self, msg: GmpMessage) -> None:
        valid_leader = (msg.sender == min(msg.members)
                        and self.address in msg.members)
        if not valid_leader:
            self._record(K.GMP_MC_REJECTED, sender=msg.sender,
                         group_id=msg.group_id)
            return
        if msg.group_id <= self.view.group_id:
            # stale proposal: refuse explicitly so the leader need not
            # burn its whole ACK-collection timeout on us
            self._record(K.GMP_NACK_SENT, to=msg.sender,
                         group_id=msg.group_id, reason="stale_gid")
            self._send(m.NACK, msg.sender, group_id=msg.group_id)
            return
        if (self._transition_gid is not None
                and msg.group_id <= self._transition_gid):
            self._record(K.GMP_NACK_SENT, to=msg.sender,
                         group_id=msg.group_id, reason="in_transition")
            self._send(m.NACK, msg.sender, group_id=msg.group_id)
            return
        self._note_gid(msg.group_id)
        was_in_transition = self.status == IN_TRANSITION
        self.status = IN_TRANSITION
        self._transition_gid = msg.group_id
        self._transition_leader = msg.sender
        self._record(K.GMP_IN_TRANSITION, group_id=msg.group_id,
                     leader=msg.sender, repeat=was_in_transition)
        self._unset_timers_for_transition()
        self._send(m.ACK, msg.sender, group_id=msg.group_id)
        self.timers.register("mc_timeout", msg.group_id,
                             self.timing.mc_timeout,
                             self._guard(self._on_mc_timeout, msg.group_id))

    def _on_commit(self, msg: GmpMessage) -> None:
        if self.status != IN_TRANSITION or msg.group_id != self._transition_gid:
            return
        if self.address not in msg.members:
            self._become_singleton()
            return
        self.timers.unregister("mc_timeout", msg.group_id)
        self._adopt_view(GroupView(msg.group_id, tuple(msg.members)))

    def _on_mc_timeout(self, gid: int) -> None:
        if self.status != IN_TRANSITION or gid != self._transition_gid:
            return
        self._record(K.GMP_MC_TIMEOUT, group_id=gid)
        self._become_singleton()

    # ------------------------------------------------------------------
    # proclaim / join
    # ------------------------------------------------------------------

    def _on_proclaim(self, msg: GmpMessage) -> None:
        buggy = self.bugs.proclaim_reply_to_sender
        if msg.originator == self.address:
            return  # our own proclaim came back around
        if self.marked_self_down and self.bugs.proclaim_forward_param:
            # the wrong-parameter bug: the forward call fails silently
            self._record(K.GMP_FORWARD_PARAM_BUG, originator=msg.originator)
            return
        if not self.is_leader:
            if msg.originator < self.view.leader:
                # a machine with a lower address than our leader exists:
                # it should lead.  Respond with a JOIN directly -- the
                # Table 6 path where, after the old leader's proclaim
                # reached a group led by the crown prince, "each machine
                # responded to the original leader with a JOIN message".
                self._record(K.GMP_DEFECT, to=msg.originator,
                             old_leader=self.view.leader)
                self._send(m.JOIN, msg.originator,
                           members=(self.address,),
                           group_id=self.view.group_id)
                return
            # forward to our leader.  The fixed code threads the true
            # originator through; the historical code re-sent the proclaim
            # under the forwarder's own identity, losing the originator --
            # the root cause of both halves of the Table 7 bug.
            forwarded_originator = self.address if buggy else msg.originator
            self._record(K.GMP_PROCLAIM_FORWARDED, originator=msg.originator,
                         forwarded_as=forwarded_originator,
                         to=self.view.leader)
            self._send(m.PROCLAIM, self.view.leader,
                       originator=forwarded_originator)
            return
        stale = (msg.originator in self.view.members
                 and not self.view.is_singleton)
        if stale and not buggy:
            return  # already one of us; nothing to answer
        reply_to = msg.sender if buggy else msg.originator
        if self.address < msg.originator:
            self._record(K.GMP_PROCLAIM_REPLY, to=reply_to,
                         originator=msg.originator, reply_kind=m.PROCLAIM)
            self._send(m.PROCLAIM, reply_to)
        else:
            self._record(K.GMP_PROCLAIM_REPLY, to=reply_to,
                         originator=msg.originator, reply_kind=m.JOIN)
            self._send(m.JOIN, reply_to, members=self.view.members,
                       group_id=self.view.group_id)

    def _on_join(self, msg: GmpMessage) -> None:
        if not self.is_leader:
            self._send(m.JOIN, self.view.leader, originator=msg.originator,
                       members=msg.members)
            return
        joiners = set(msg.members) | {msg.originator}
        self._initiate_change(self.view.with_added(*joiners))

    def _on_dead_report(self, msg: GmpMessage) -> None:
        subject = msg.subject
        if subject == self.address:
            return  # someone says we are dead; our own heartbeats decide
        if subject not in self.view.members:
            return
        self.suspected.add(subject)
        acting = self._acting_leader()
        if acting == self.address:
            if not self.is_leader:
                self._record(K.GMP_TAKEOVER, old_leader=self.view.leader)
            self._initiate_change(self.view.without(*self.suspected))

    # ------------------------------------------------------------------
    # view adoption
    # ------------------------------------------------------------------

    def _adopt_view(self, view: GroupView, *, announce: bool = True) -> None:
        self.view = view
        self._note_gid(view.group_id)
        self.status = STABLE
        self.suspected.clear()
        self._transition_gid = None
        self._transition_leader = None
        if not self.bugs.self_death:
            self.marked_self_down = False
        self.views_adopted.append(view)
        self._known.update(mm for mm in view.members if mm != self.address)
        self._ever_members.update(mm for mm in view.members
                                  if mm != self.address)
        if announce:
            self._record(K.GMP_VIEW_ADOPTED, group_id=view.group_id,
                         members=view.members, leader=view.leader)
        self._arm_heartbeat_send()
        self._arm_all_expects()
        self._arm_proclaim()

    def _become_singleton(self) -> None:
        self._record(K.GMP_SINGLETON)
        self._unset_timers_for_transition()
        self.timers.unregister("mc_timeout")
        self._pending = None
        self._adopt_view(singleton_view(self.address, self._next_gid()))
        self._send_proclaims()

    # ------------------------------------------------------------------
    # stack interface
    # ------------------------------------------------------------------

    def pop(self, msg: Message) -> None:
        gmsg = msg.payload
        if not isinstance(gmsg, GmpMessage):
            return
        if self._suspended or not self._started:
            return  # a stopped process reads nothing
        self._record(K.GMP_RECEIVE, msg_kind=gmsg.kind, src=gmsg.sender,
                     originator=gmsg.originator, group_id=gmsg.group_id)
        self._note_gid(gmsg.group_id)
        if gmsg.sender != self.address:
            self._known.add(gmsg.sender)
        if gmsg.kind == m.HEARTBEAT:
            if gmsg.sender in self.view.members and self.status != IN_TRANSITION:
                self.suspected.discard(gmsg.sender)
                self._arm_expect(gmsg.sender)
            return
        handler = {
            m.PROCLAIM: self._on_proclaim,
            m.JOIN: self._on_join,
            m.MEMBERSHIP_CHANGE: self._on_membership_change,
            m.ACK: self._on_ack,
            m.NACK: self._on_nack,
            m.COMMIT: self._on_commit,
            m.DEAD_REPORT: self._on_dead_report,
        }.get(gmsg.kind)
        if handler is not None:
            handler(gmsg)

    def _record(self, kind: str, **attrs) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now, node=self.address,
                              **attrs)

    def __repr__(self) -> str:
        return (f"Daemon(addr={self.address}, {self.status}, "
                f"view={list(self.view.members)}, gid={self.view.group_id})")


def gmp_stubs() -> PacketStubs:
    """Recognition/generation stubs for GMP messages."""
    from repro.gmp.reliable import RelHeader

    stubs = PacketStubs()

    def recognize(msg: Message) -> Optional[str]:
        header = msg.top_header
        if isinstance(header, RelHeader) and header.is_ack:
            return "REL_ACK"
        if isinstance(msg.payload, GmpMessage):
            return msg.payload.kind
        return None

    stubs.register_recognizer(recognize)

    def _generator(kind: str):
        def generate(*, sender: int = 0, originator: Optional[int] = None,
                     subject: int = -1, group_id: int = 0,
                     members: Tuple[int, ...] = (),
                     dst: Optional[int] = None) -> Message:
            gmsg = GmpMessage(kind=kind, sender=sender,
                              originator=sender if originator is None
                              else originator,
                              subject=subject, group_id=group_id,
                              members=tuple(members))
            wrapped = Message(payload=gmsg)
            if dst is not None:
                wrapped.meta["dst"] = dst
            wrapped.meta["reliable"] = False
            return wrapped
        return generate

    for kind in m.ALL_KINDS:
        stubs.register_generator(kind, _generator(kind))
    return stubs
