"""Pass 3 (trace-schema drift) against the real tree and seeded drift.

The first class is the registry drift-guard: the
:mod:`repro.netsim.kinds` registry, the statically harvested emit
sites, and the oracle subscriptions must all agree on the live tree.
The mutation tests then seed one piece of drift at a time and assert
the exact diagnostic.
"""

import textwrap

from repro.netsim import kinds
from repro.staticcheck import (check_drift, coverage_summary,
                               harvest_paths)
from repro.staticcheck.suite import repo_root

SRC = [f"{repo_root()}/src/repro"]


def all_codes(reports, floor="info"):
    return sorted(d.code for r in reports for d in r.at_least(floor))


class TestRegistryDriftGuard:
    def test_registry_matches_harvested_emits_exactly(self):
        harvest = harvest_paths(SRC)
        assert harvest.emitted_kinds() == set(kinds.all_kinds()), (
            "repro/netsim/kinds.py and the tree's record() call sites "
            "disagree; update the registry (or the emitter)")

    def test_every_oracle_subscription_is_emitted(self):
        # the acceptance-criteria proof: no invariant pack, coverage
        # key, lineage table or kind comparison names a dead kind
        harvest = harvest_paths(SRC)
        emitted = harvest.emitted_kinds()
        dead = [s for s in harvest.subscriptions
                if not any(s.matches(k) for k in emitted)]
        assert dead == []

    def test_oracle_packs_cover_their_protocols(self):
        harvest = harvest_paths(SRC)
        covered = coverage_summary(harvest)
        for kind in ("gmp.view_adopted", "tcp.retransmit", "tcp.state"):
            assert kind in covered

    def test_live_tree_has_no_drift_findings(self):
        reports = check_drift(SRC)
        assert all_codes(reports, floor="warning") == []

    def test_known_dynamic_sites_are_isolated(self):
        # trace replay (analysis/export) is the one legitimate dynamic
        # emit site; anything new deserves a look
        harvest = harvest_paths(SRC)
        dynamic = sorted({d.path.rsplit("/", 1)[-1]
                          for d in harvest.dynamic})
        assert dynamic == ["export.py"]

    def test_constant_name_mapping(self):
        assert kinds.constant_name("tcp.ooo_queued") == "TCP_OOO_QUEUED"
        for kind in kinds.all_kinds():
            assert getattr(kinds, kinds.constant_name(kind)) == kind


class TestHarvestShapes:
    def test_wrapper_call_sites_resolve_constants(self, tmp_path):
        mod = tmp_path / "emitter.py"
        mod.write_text(textwrap.dedent("""
            from repro.netsim import kinds as K

            class Proto:
                def _record(self, kind, **attrs):
                    self.trace.record(kind, **attrs)

                def on_loss(self):
                    self._record(K.TCP_RETRANSMIT, n=1)
                    self._record("tcp.cwnd", n=2)
        """))
        harvest = harvest_paths([str(mod)])
        assert harvest.emitted_kinds() == {"tcp.retransmit", "tcp.cwnd"}
        assert not harvest.dynamic

    def test_conditional_local_kind_resolves_both_branches(self, tmp_path):
        mod = tmp_path / "cond.py"
        mod.write_text(textwrap.dedent("""
            def deliver(trace, ok):
                kind = "net.send" if ok else "net.link_drop"
                trace.record(kind, ok=ok)
        """))
        harvest = harvest_paths([str(mod)])
        assert harvest.emitted_kinds() == {"net.send", "net.link_drop"}

    def test_unresolvable_kind_is_dynamic_not_emitted(self, tmp_path):
        mod = tmp_path / "dyn.py"
        mod.write_text(textwrap.dedent("""
            def replay(trace, entry):
                trace.record(entry["kind"], **entry["attrs"])
        """))
        harvest = harvest_paths([str(mod)])
        assert harvest.emitted_kinds() == set()
        assert len(harvest.dynamic) == 1

    def test_subscription_roles(self, tmp_path):
        mod = tmp_path / "subs.py"
        mod.write_text(textwrap.dedent("""
            _EDGE_ATTRS = {"pfi.duplicate": ("original", "duplicate")}

            class ViewPack:
                kinds = ("gmp.view_adopted",)
                prefixes = ("tcp",)

            def probe(trace, entry):
                if entry.kind == "pfi.delay":
                    return trace.entries("gmp.send")
                return trace.count("tcp.retransmit")
        """))
        harvest = harvest_paths([str(mod)])
        roles = {(s.kind, s.role, s.prefix)
                 for s in harvest.subscriptions}
        assert roles == {
            ("pfi.duplicate", "table", False),
            ("gmp.view_adopted", "oracle-kind", False),
            ("tcp", "oracle-prefix", True),
            ("pfi.delay", "comparison", False),
            ("gmp.send", "query", False),
            ("tcp.retransmit", "query", False),
        }


class TestSeededDrift:
    def test_bogus_invariant_subscription_is_sc201(self, tmp_path):
        # the acceptance-criteria mutation: one invariant subscribed to
        # a kind nobody emits must produce exactly SC201
        mod = tmp_path / "bogus_pack.py"
        mod.write_text(textwrap.dedent("""
            def emit(trace):
                trace.record("gmp.send", n=1)

            class BrokenPack:
                kinds = ("gmp.never_emitted",)
        """))
        reports = check_drift([str(mod)],
                              registry={"gmp.send"})
        findings = [d for r in reports for d in r.at_least("warning")]
        assert [d.code for d in findings] == ["SC201"]
        assert "gmp.never_emitted" in findings[0].message

    def test_dead_registry_kind_is_sc203(self, tmp_path):
        mod = tmp_path / "emit_one.py"
        mod.write_text('def emit(trace):\n'
                       '    trace.record("gmp.send", n=1)\n')
        reports = check_drift([str(mod)],
                              registry={"gmp.send", "gmp.ghost"})
        findings = [d for r in reports for d in r.at_least("warning")]
        assert [d.code for d in findings] == ["SC203"]
        assert "gmp.ghost" in findings[0].message

    def test_unregistered_emit_is_sc204(self, tmp_path):
        mod = tmp_path / "emit_new.py"
        mod.write_text('def emit(trace):\n'
                       '    trace.record("gmp.brand_new", n=1)\n')
        reports = check_drift([str(mod)], registry=set())
        findings = [d for r in reports for d in r.at_least("warning")]
        assert [d.code for d in findings] == ["SC204"]
        assert "GMP_BRAND_NEW" in findings[0].hint

    def test_uncovered_emit_is_info_only(self, tmp_path):
        mod = tmp_path / "emit_info.py"
        mod.write_text('def emit(trace):\n'
                       '    trace.record("net.send", n=1)\n')
        reports = check_drift([str(mod)], registry={"net.send"})
        assert all_codes(reports, floor="warning") == []
        assert all_codes(reports) == ["SC202"]
