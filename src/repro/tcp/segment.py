"""TCP segment wire format.

A :class:`Segment` models the RFC-793 header fields the experiments
exercise: ports, sequence/acknowledgement numbers, flags, and the receive
window, plus the payload.  Segments serialize to a 20-byte header +
payload with a 16-bit ones'-complement checksum so corruption faults are
detectable, and deserialize back -- the PFI layer can therefore operate on
either structured headers or raw bytes.

Classification (:func:`classify`) maps a segment to the message-type names
the recognition stubs report: SYN, SYNACK, FIN, RST, ACK (no payload),
DATA (payload present).  Keep-alive and zero-window probes are DATA/ACK
segments distinguishable only by context (seq relative to the receiver's
window), so filter scripts that need them compare ``seq`` fields, exactly
as the paper's scripts did.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [(SYN, "SYN"), (FIN, "FIN"), (RST, "RST"), (ACK, "ACK"),
               (PSH, "PSH"), (URG, "URG")]

_HEADER_FMT = "!HHIIBBHHH"  # ports, seq, ack, offset, flags, window, cksum, urg
_HEADER_LEN = struct.calcsize(_HEADER_FMT)

SEQ_MOD = 1 << 32


@dataclass
class Segment:
    """A TCP segment header plus payload."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""

    def __post_init__(self):
        self.seq %= SEQ_MOD
        self.ack %= SEQ_MOD

    # ------------------------------------------------------------------
    # flag helpers
    # ------------------------------------------------------------------

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & ACK)

    def flag_names(self) -> str:
        names = [name for bit, name in _FLAG_NAMES if self.flags & bit]
        return "|".join(names) if names else "NONE"

    @property
    def seg_len(self) -> int:
        """Sequence space consumed: payload bytes, +1 each for SYN and FIN."""
        length = len(self.payload)
        if self.is_syn:
            length += 1
        if self.is_fin:
            length += 1
        return length

    @property
    def end_seq(self) -> int:
        """First sequence number after this segment."""
        return (self.seq + self.seg_len) % SEQ_MOD

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to header+payload with a valid checksum."""
        header = struct.pack(
            _HEADER_FMT, self.src_port, self.dst_port, self.seq, self.ack,
            (_HEADER_LEN // 4) << 4, self.flags, self.window, 0, 0)
        checksum = _checksum(header + self.payload)
        header = header[:16] + struct.pack("!H", checksum) + header[18:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes, *, verify: bool = True) -> "Segment":
        """Parse bytes back into a segment, optionally verifying checksum."""
        if len(data) < _HEADER_LEN:
            raise ValueError(f"segment too short: {len(data)} bytes")
        (src_port, dst_port, seq, ack, _offset, flags, window, checksum,
         _urg) = struct.unpack(_HEADER_FMT, data[:_HEADER_LEN])
        payload = data[_HEADER_LEN:]
        if verify:
            zeroed = data[:16] + b"\x00\x00" + data[18:_HEADER_LEN] + payload
            if _checksum(zeroed) != checksum:
                raise ValueError("segment checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                   flags=flags, window=window, payload=payload)

    def copy(self) -> "Segment":
        """An independent copy (payload bytes are shared, immutable)."""
        return replace(self)

    #: opt-in to the Message header ``clone()`` protocol: duplicating a
    #: message clones its Segment header with a dataclass replace instead
    #: of running it through ``copy.deepcopy``
    clone = copy

    def __repr__(self) -> str:
        return (f"Segment({self.flag_names()} seq={self.seq} ack={self.ack} "
                f"win={self.window} len={len(self.payload)})")


def classify(segment: Segment) -> str:
    """Message-type name for the recognition stubs."""
    if segment.is_rst:
        return "RST"
    if segment.is_syn:
        return "SYNACK" if segment.is_ack else "SYN"
    if segment.is_fin:
        return "FIN"
    if len(segment.payload) > 0:
        return "DATA"
    return "ACK"


def seq_lt(a: int, b: int) -> bool:
    """Modular sequence comparison: a < b in 32-bit sequence space."""
    return ((a - b) % SEQ_MOD) > (SEQ_MOD // 2)


def seq_leq(a: int, b: int) -> bool:
    """Modular sequence comparison: a <= b."""
    return a == b or seq_lt(a, b)


def seq_add(a: int, n: int) -> int:
    """Modular sequence addition."""
    return (a + n) % SEQ_MOD


def seq_sub(a: int, b: int) -> int:
    """Modular distance a - b (assumes a is at or after b)."""
    return (a - b) % SEQ_MOD


def _checksum(data: bytes) -> int:
    """16-bit ones'-complement sum, the classic internet checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
