"""Tests for automatic test-script generation (paper §6 future work)."""

import pytest

from repro.core.faults import FailureModel
from repro.core.genscripts import (MessageTypeSpec,
                                   ProtocolSpec, campaign_by_model,
                                   generate_campaign, gmp_spec, tcp_spec)
from tests.core.conftest import Harness


@pytest.fixture
def harness():
    return Harness()


SPEC = ProtocolSpec(
    name="toy",
    message_types=(
        MessageTypeSpec("DATA", mutable_fields=(("value", -1),)),
        MessageTypeSpec("ACK"),
    ))


class TestGeneration:
    def test_campaign_nonempty_and_named_uniquely(self):
        scripts = generate_campaign(SPEC)
        names = [s.name for s in scripts]
        assert len(names) == len(set(names))
        assert len(scripts) >= 16

    def test_covers_both_directions(self):
        scripts = generate_campaign(SPEC)
        assert {s.direction for s in scripts} == {"send", "receive"}

    def test_covers_expected_failure_models(self):
        grouped = campaign_by_model(generate_campaign(SPEC))
        for model in (FailureModel.SEND_OMISSION,
                      FailureModel.RECEIVE_OMISSION,
                      FailureModel.TIMING,
                      FailureModel.BYZANTINE,
                      FailureModel.PROCESS_CRASH):
            assert model in grouped, model

    def test_drop_script_per_type(self):
        scripts = generate_campaign(SPEC, directions=("receive",))
        names = {s.name for s in scripts}
        assert "drop_data_receive" in names
        assert "drop_ack_receive" in names

    def test_corruption_only_for_declared_fields(self):
        scripts = generate_campaign(SPEC)
        corrupt = [s for s in scripts if s.name.startswith("corrupt_")]
        assert all("data" in s.name for s in corrupt)

    def test_non_control_types_skip_reorder_and_duplicate(self):
        spec = ProtocolSpec("t", (MessageTypeSpec("BULK", control=False),))
        scripts = generate_campaign(spec, directions=("send",))
        names = {s.name for s in scripts}
        assert "drop_bulk_send" in names
        assert "reorder_bulk_send" not in names
        assert "duplicate_bulk_send" not in names

    def test_builtin_specs(self):
        assert "DATA" in tcp_spec().type_names()
        assert "MEMBERSHIP_CHANGE" in gmp_spec().type_names()


class TestGeneratedScriptsWork:
    """Each generated script must actually perform its fault when
    installed -- in both backends."""

    def find(self, name, spec=SPEC):
        for script in generate_campaign(spec):
            if script.name == name:
                return script
        raise KeyError(name)

    @pytest.mark.parametrize("backend", ["python", "tclish"])
    def test_drop_script(self, harness, backend):
        script = self.find("drop_ack_receive")
        harness.pfi.set_receive_filter(
            script.python_filter if backend == "python"
            else script.tclish_filter())
        harness.send_up("ACK")
        harness.send_up("DATA")
        assert len(harness.top.received) == 1

    @pytest.mark.parametrize("backend", ["python", "tclish"])
    def test_delay_script(self, harness, backend):
        script = self.find("delay_data_send")
        harness.pfi.set_send_filter(
            script.python_filter if backend == "python"
            else script.tclish_filter())
        harness.send_down("DATA")
        assert harness.bottom.received == []
        harness.run()
        assert len(harness.bottom.received) == 1

    @pytest.mark.parametrize("backend", ["python", "tclish"])
    def test_duplicate_script(self, harness, backend):
        script = self.find("duplicate_ack_send")
        harness.pfi.set_send_filter(
            script.python_filter if backend == "python"
            else script.tclish_filter())
        harness.send_down("ACK")
        harness.run()
        assert len(harness.bottom.received) == 2

    @pytest.mark.parametrize("backend", ["python", "tclish"])
    def test_reorder_script(self, harness, backend):
        script = self.find("reorder_ack_send")
        harness.pfi.set_send_filter(
            script.python_filter if backend == "python"
            else script.tclish_filter())
        harness.send_down("ACK", tag="first")
        harness.send_down("ACK", tag="second")
        harness.run()
        tags = [m.meta["tag"] for m in harness.bottom.received]
        assert tags == ["second", "first"]

    @pytest.mark.parametrize("backend", ["python", "tclish"])
    def test_corrupt_script(self, harness, backend):
        from repro.xkernel.message import Message
        script = self.find("corrupt_data_value_send")
        harness.pfi.set_send_filter(
            script.python_filter if backend == "python"
            else script.tclish_filter())
        msg = Message(payload={"value": 7}, meta={"type": "DATA"})
        harness.pfi.push(msg)
        assert harness.bottom.received[0].payload["value"] == -1

    @pytest.mark.parametrize("backend", ["python", "tclish"])
    def test_crash_script(self, harness, backend):
        script = self.find("crash_after_20_receive")
        harness.pfi.set_receive_filter(
            script.python_filter if backend == "python"
            else script.tclish_filter())
        for _ in range(25):
            harness.send_up("DATA")
        assert len(harness.top.received) == 20

    def test_omission_script_statistics(self, harness):
        script = self.find("omission_30pct_receive")
        harness.pfi.set_receive_filter(script.python_filter)
        for _ in range(300):
            harness.send_up("DATA")
        delivered = len(harness.top.received)
        assert 150 < delivered < 270


class TestCampaignAgainstGmp:
    """Run a slice of the auto-generated GMP campaign end to end."""

    def test_drop_commit_script_blocks_joins(self):
        from repro.experiments.gmp_common import build_gmp_cluster
        script = next(s for s in generate_campaign(gmp_spec())
                      if s.name == "drop_commit_receive")
        cluster = build_gmp_cluster([1, 2])
        cluster.pfis[2].set_receive_filter(script.python_filter)
        cluster.start()
        cluster.run_until(30.0)
        # daemon 2 can never commit a joint view
        assert all(v.is_singleton for v in cluster.daemons[2].views_adopted)

    def test_delay_heartbeat_script_causes_churn(self):
        from repro.experiments.gmp_common import build_gmp_cluster
        script = next(s for s in generate_campaign(gmp_spec())
                      if s.name == "delay_heartbeat_send")
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(10.0)
        baseline_views = len(cluster.trace.entries("gmp.view_adopted"))
        cluster.pfis[3].set_send_filter(script.python_filter)
        cluster.run_until(40.0)
        churn = len(cluster.trace.entries("gmp.view_adopted"))
        assert churn > baseline_views  # delayed heartbeats look dropped
