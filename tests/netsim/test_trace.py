"""Unit tests for the trace recorder."""

import pytest

from repro.netsim.trace import TraceEntry, TraceRecorder


def make_trace():
    clock = [0.0]
    trace = TraceRecorder(clock=lambda: clock[0])
    return trace, clock


def test_record_with_bound_clock():
    trace, clock = make_trace()
    clock[0] = 4.2
    entry = trace.record("tcp.retransmit", seq=7)
    assert entry.time == 4.2
    assert entry["seq"] == 7


def test_record_with_explicit_time():
    trace, _ = make_trace()
    entry = trace.record("x", t=9.0)
    assert entry.time == 9.0


def test_record_without_clock_raises():
    trace = TraceRecorder()
    with pytest.raises(RuntimeError):
        trace.record("x")


def test_entries_filter_by_kind_and_attrs():
    trace, clock = make_trace()
    trace.record("tcp.retransmit", conn="a", seq=1)
    trace.record("tcp.retransmit", conn="b", seq=1)
    trace.record("tcp.transmit", conn="a", seq=2)
    assert len(trace.entries("tcp.retransmit")) == 2
    assert len(trace.entries("tcp.retransmit", conn="a")) == 1
    assert len(trace.entries(conn="a")) == 2


def test_entries_with_prefix():
    trace, _ = make_trace()
    trace.record("tcp.a")
    trace.record("tcp.b")
    trace.record("gmp.c")
    assert len(trace.entries_with_prefix("tcp.")) == 2


def test_times_and_intervals():
    trace, clock = make_trace()
    for t in (1.0, 3.0, 7.0):
        clock[0] = t
        trace.record("evt")
    assert trace.times("evt") == [1.0, 3.0, 7.0]
    assert trace.intervals("evt") == [2.0, 4.0]


def test_first_and_last():
    trace, clock = make_trace()
    clock[0] = 1.0
    trace.record("evt", n=1)
    clock[0] = 2.0
    trace.record("evt", n=2)
    assert trace.first("evt")["n"] == 1
    assert trace.last("evt")["n"] == 2
    assert trace.first("missing") is None


def test_count():
    trace, _ = make_trace()
    for _ in range(3):
        trace.record("evt")
    assert trace.count("evt") == 3
    assert trace.count("other") == 0


def test_get_with_default():
    entry = TraceEntry(0.0, "x", {"a": 1})
    assert entry.get("a") == 1
    assert entry.get("b", "fallback") == "fallback"


def test_clear():
    trace, _ = make_trace()
    trace.record("evt")
    trace.clear()
    assert len(trace) == 0


def test_dump_filters_by_prefix():
    trace, _ = make_trace()
    trace.record("tcp.x", seq=1)
    trace.record("gmp.y")
    dump = trace.dump("tcp.")
    assert "tcp.x" in dump
    assert "gmp.y" not in dump


def test_iteration_in_capture_order():
    trace, clock = make_trace()
    trace.record("b")
    trace.record("a")
    assert [e.kind for e in trace] == ["b", "a"]


def test_pickle_roundtrip_drops_bound_clock():
    trace, clock = make_trace()
    clock[0] = 3.0
    trace.record("evt", n=1)
    import pickle
    clone = pickle.loads(pickle.dumps(trace))
    assert [e.kind for e in clone] == ["evt"]
    assert clone.first("evt").time == 3.0
    # the clock closed over local state and must not survive the trip
    with pytest.raises(RuntimeError):
        clone.record("evt2")
    # rebinding restores clockless recording
    clone.bind_clock(lambda: 9.0)
    assert clone.record("evt2").time == 9.0


def test_entries_with_prefix_empty_prefix_matches_all():
    trace, _ = make_trace()
    trace.record("tcp.a")
    trace.record("gmp.b")
    assert len(trace.entries_with_prefix("")) == 2


def test_entries_with_prefix_attr_filters():
    trace, _ = make_trace()
    trace.record("tcp.a", conn="x")
    trace.record("tcp.b", conn="y")
    assert len(trace.entries_with_prefix("tcp.", conn="x")) == 1
    # filtering on an attr no entry carries matches nothing
    assert trace.entries_with_prefix("tcp.", missing=1) == []


def test_entries_with_prefix_no_match():
    trace, _ = make_trace()
    trace.record("tcp.a")
    assert trace.entries_with_prefix("udp.") == []
    assert TraceRecorder().entries_with_prefix("tcp.") == []


def test_count_by_kind_and_span():
    trace, clock = make_trace()
    for t, kind in ((1.0, "tcp.a"), (2.0, "tcp.a"), (5.0, "gmp.b")):
        clock[0] = t
        trace.record(kind)
    assert trace.count_by_kind() == {"tcp.a": 2, "gmp.b": 1}
    assert trace.count_by_kind("tcp.") == {"tcp.a": 2}
    assert trace.span() == (1.0, 5.0)
    assert TraceRecorder().span() is None


def test_fill_metrics_gauges():
    from repro.obs.metrics import MetricsRegistry
    trace, _ = make_trace()
    trace.record("tcp.a")
    trace.record("tcp.a")
    registry = MetricsRegistry()
    trace.fill_metrics(registry, run="r0")
    snap = registry.snapshot()
    assert snap["trace_entries_total{run=r0}"] == 2
    assert snap["trace_entries{kind=tcp.a,run=r0}"] == 2


class TestKindIndex:
    """The lazy per-kind index must stay coherent with interleaved
    record/query traffic -- the pattern experiments actually produce."""

    def _trace(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        for i in range(10):
            trace.record("tcp.send", t=float(i), seq=i)
            if i % 2 == 0:
                trace.record("tcp.retransmit", t=float(i) + 0.5, seq=i)
            trace.record("gmp.heartbeat", t=float(i) + 0.7, node=i % 3)
        return trace

    def test_index_matches_linear_scan(self):
        trace = self._trace()
        for kind in ("tcp.send", "tcp.retransmit", "gmp.heartbeat", "nope"):
            assert trace.entries(kind) == [
                e for e in trace if e.kind == kind]

    def test_queries_see_entries_recorded_after_first_query(self):
        trace = self._trace()
        assert trace.count("tcp.send") == 10  # builds the index
        trace.record("tcp.send", t=99.0, seq=99)
        assert trace.count("tcp.send") == 11
        assert trace.last("tcp.send").time == 99.0

    def test_prefix_queries_see_later_entries(self):
        trace = self._trace()
        assert len(trace.entries_with_prefix("tcp.")) == 15
        trace.record("tcp.drop", t=50.0)
        assert len(trace.entries_with_prefix("tcp.")) == 16
        assert len(trace.entries_with_prefix("gmp.")) == 10

    def test_attr_filters_still_apply(self):
        trace = self._trace()
        assert trace.count("tcp.retransmit", seq=4) == 1
        assert [e.time for e in trace.entries_with_prefix("gmp.", node=0)] \
            == [0.7, 3.7, 6.7, 9.7]

    def test_clear_resets_index(self):
        trace = self._trace()
        assert trace.count("tcp.send") == 10
        trace.clear()
        assert trace.count("tcp.send") == 0
        assert trace.entries_with_prefix("tcp.") == []
        trace.record("tcp.send", t=1.0)
        assert trace.count("tcp.send") == 1

    def test_count_by_kind_first_capture_order(self):
        trace = self._trace()
        assert list(trace.count_by_kind()) == [
            "tcp.send", "tcp.retransmit", "gmp.heartbeat"]

    def test_pickle_roundtrip_drops_caches_keeps_entries(self):
        import pickle
        trace = self._trace()
        trace.entries("tcp.send")  # populate the index first
        clone = pickle.loads(pickle.dumps(trace))
        assert list(clone) == list(trace)
        assert clone.entries("tcp.send") == trace.entries("tcp.send")

    def test_entries_are_interned_and_slotted(self):
        import sys
        trace = TraceRecorder(clock=lambda: 0.0)
        a = trace.record("x.y", t=0.0)
        b = trace.record("x" + ".y", t=1.0)  # distinct source strings
        assert a.kind is b.kind  # interned to one object
        assert not hasattr(a, "__dict__")
        assert sys.getsizeof(a) < 100  # slots, not a dict-backed object


# ----------------------------------------------------------------------
# checkpoint support: position / truncate / fork
# ----------------------------------------------------------------------

class TestTruncateAndFork:
    def _trace3(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        for i in range(3):
            trace.record("x.tick", t=float(i), n=i)
        return trace

    def test_position_counts_entries(self):
        trace = self._trace3()
        assert trace.position == 3

    def test_truncate_drops_suffix_and_rebuilds_indexes(self):
        trace = self._trace3()
        assert trace.entries("x.tick")  # warm the index
        assert trace.truncate(1) == 2
        assert trace.position == 1
        assert [e["n"] for e in trace.entries("x.tick")] == [0]

    def test_truncate_noop_at_current_position(self):
        trace = self._trace3()
        assert trace.truncate(3) == 0
        assert trace.position == 3

    def test_truncate_out_of_range(self):
        trace = self._trace3()
        with pytest.raises(ValueError):
            trace.truncate(4)
        with pytest.raises(ValueError):
            trace.truncate(-1)

    def test_fork_shares_prefix_entries(self):
        trace = self._trace3()
        clone = trace.fork()
        assert list(clone) == list(trace)
        assert list(clone)[0] is list(trace)[0]  # shared, not copied

    def test_fork_diverges_independently(self):
        trace = self._trace3()
        clone = trace.fork()
        clone.bind_clock(lambda: 9.0)
        clone.record("x.fork")
        trace.record("x.cold", t=5.0)
        assert [e.kind for e in clone][-1] == "x.fork"
        assert [e.kind for e in trace][-1] == "x.cold"
        assert len(clone) == len(trace) == 4

    def test_fork_at_position(self):
        trace = self._trace3()
        clone = trace.fork(position=1)
        assert len(clone) == 1

    def test_fork_has_no_clock(self):
        clone = self._trace3().fork()
        with pytest.raises(RuntimeError):
            clone.record("x.unclocked")
