"""Figure-series extraction from traces.

Figure 4 of the paper plots retransmission-timeout values (the interval
before each successive retransmission of the same segment) for the
no-delay, three-second-delay, and eight-second-delay experiments.  These
helpers pull that series out of a run's trace.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.trace import TraceRecorder


def transmissions_of_seq(trace: TraceRecorder, conn: str,
                         seq: int) -> List[float]:
    """Timestamps of every transmission of one sequence number."""
    return [entry.time for entry in trace.entries("tcp.transmit", conn=conn)
            if entry.get("seq") == seq]


def retransmission_series(trace: TraceRecorder, conn: str,
                          seq: Optional[int] = None) -> List[float]:
    """Interval before each retransmission of the most-retransmitted
    segment of a connection (or of an explicit ``seq``).

    This is one curve of Figure 4: ``series[i]`` is the timeout that
    expired before retransmission ``i+1``.
    """
    if seq is None:
        seq = most_retransmitted_seq(trace, conn)
        if seq is None:
            return []
    times = transmissions_of_seq(trace, conn, seq)
    return [b - a for a, b in zip(times, times[1:])]


def most_retransmitted_seq(trace: TraceRecorder, conn: str) -> Optional[int]:
    """The sequence number with the most retransmit events, or None."""
    counts = {}
    for entry in trace.entries("tcp.retransmit", conn=conn):
        seq = entry.get("seq")
        counts[seq] = counts.get(seq, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda s: (counts[s], -s))


def retransmit_counts_by_seq(trace: TraceRecorder, conn: str) -> dict:
    """Map of seq -> number of retransmissions for a connection."""
    counts: dict = {}
    for entry in trace.entries("tcp.retransmit", conn=conn):
        seq = entry.get("seq")
        counts[seq] = counts.get(seq, 0) + 1
    return counts
