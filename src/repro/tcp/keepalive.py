"""Keep-alive probing.

"There is no provision in the TCP specification for probing idle
connections ...  However, many TCP implementations provide a mechanism
called keep-alive which sends probes periodically that are designed to
elicit an ACK from the peer machine."

The engine reproduces both observed disciplines:

- **BSD** (SunOS/AIX/NeXT): first probe after ``ka_idle`` (>= 7200 s per
  the spec), dropped probes retransmitted at a fixed ``ka_probe_interval``
  (75 s) up to ``ka_probe_retransmits`` (8) times, then a RST and the
  connection is dropped.  SunOS's probe carries one garbage byte at
  ``SND.NXT - 1``; AIX/NeXT send the same sequence number with no data.
- **Solaris**: first probe after 6752 s (a spec violation -- the threshold
  must be >= 7200 s -- which the paper traced to clock-tick skew via
  6752/7200 == 56/60), retransmissions with exponential backoff from the
  minimum RTO, 7 retransmissions, then a silent close (no RST).

Any inbound segment resets the engine to the idle phase, so ACKed probes
repeat at the idle interval indefinitely (the 112-hour Solaris run).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer
from repro.netsim.trace import TraceRecorder
from repro.tcp.vendors import VendorProfile
from repro.netsim import kinds as K


class KeepAliveEngine:
    """Drives keep-alive probing for one connection."""

    def __init__(self, scheduler: Scheduler, profile: VendorProfile, *,
                 send_probe: Callable[[], None],
                 on_dead: Callable[[], None],
                 trace: Optional[TraceRecorder] = None,
                 name: str = ""):
        self._scheduler = scheduler
        self._p = profile
        self._send_probe = send_probe
        self._on_dead = on_dead
        self._trace = trace
        self._name = name
        self._timer = Timer(scheduler, self._on_timer, name=f"keepalive/{name}")
        self.enabled = False
        self.probing = False
        self.probes_sent = 0
        self.retransmits = 0
        self._backoff = profile.min_rto

    def enable(self) -> None:
        """Turn keep-alive on (the spec requires it default to off)."""
        self.enabled = True
        self._arm_idle()

    def disable(self) -> None:
        """Turn keep-alive off and cancel any pending probe."""
        self.enabled = False
        self.probing = False
        self._timer.stop()

    def stop(self) -> None:
        """Alias of :meth:`disable`, called on connection teardown."""
        self.disable()

    def on_segment_received(self) -> None:
        """Any inbound traffic proves liveness: back to the idle phase."""
        if not self.enabled:
            return
        self.probing = False
        self.retransmits = 0
        self._backoff = self._p.min_rto
        self._arm_idle()

    def _arm_idle(self) -> None:
        self._timer.start(self._p.ka_idle)

    def _on_timer(self) -> None:
        if not self.enabled:
            return
        if not self.probing:
            self.probing = True
            self.retransmits = 0
            self._backoff = self._p.min_rto
            self._probe(retransmission=False)
            self._arm_retransmit()
            return
        if self.retransmits >= self._p.ka_probe_retransmits:
            self._record(K.TCP_KEEPALIVE_GIVE_UP,
                         retransmits=self.retransmits,
                         reset=self._p.ka_reset_on_fail)
            self.disable()
            self._on_dead()
            return
        self.retransmits += 1
        self._probe(retransmission=True)
        self._arm_retransmit()

    def _arm_retransmit(self) -> None:
        if self._p.ka_backoff:
            interval = self._backoff
            self._backoff = min(self._backoff * 2, self._p.max_rto)
        else:
            interval = self._p.ka_probe_interval
        self._timer.start(interval)

    def _probe(self, retransmission: bool) -> None:
        self.probes_sent += 1
        self._record(K.TCP_KEEPALIVE_PROBE, retransmission=retransmission,
                     number=self.probes_sent)
        self._send_probe()

    def _record(self, kind: str, **attrs) -> None:
        if self._trace is not None:
            self._trace.record(kind, t=self._scheduler.now, conn=self._name,
                               **attrs)
