"""Execution backends behind :meth:`Campaign.run`.

A backend answers one question: *where do this sweep's configurations
execute?*  ``local`` is the original in-process engine -- serial or a
``ProcessPoolExecutor``, byte-identical to what ``Campaign.run`` always
did -- and stays the default so existing sweeps are untouched.
``sockets`` hands the sweep to a :class:`~repro.core.fabric.coordinator.
FabricCoordinator`: worker *processes* over a socket protocol, with
work-stealing leases and a shared result store, so the sweep survives
worker loss and resumes incrementally.

Both backends share the campaign's semantics exactly: per-config seeds,
lint preflight, prefix grouping, oracle evaluation.  The property suite
(``tests/props/test_fabric_props.py``) holds them to identical results
and stable-key scorecards; the chaos suite (``tests/fabric/``) holds the
sockets backend to the resumability contract.  A new backend earns its
place by passing both.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

BACKENDS = ("local", "sockets")


def resolve_backend(name: str) -> str:
    """Validate a ``backend=`` argument (returns it unchanged)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown campaign backend {name!r}; choose from "
            f"{', '.join(BACKENDS)}")
    return name


def run_sockets_campaign(campaign, config_list: List[Dict[str, Any]], *,
                         fabric_dir: Union[str, Path],
                         workers: Union[int, str] = 2,
                         telemetry: bool = True,
                         oracle: Optional[Any] = None,
                         group: bool = True,
                         meta: Optional[Dict[str, Any]] = None,
                         fabric_options: Optional[Dict[str, Any]] = None):
    """Run one campaign sweep on the sockets backend.

    Mirrors the local path's contract: lint preflight aborts before any
    worker starts, results come back in input order, and the campaign
    directory (``fabric_dir``) is left resumable -- re-running the same
    sweep against it only executes rows the store does not hold yet.
    """
    from repro.core.fabric.coordinator import FabricCoordinator
    from repro.core.fabric.spec import SweepSpec
    from repro.core.orchestrator import CampaignScriptError
    if campaign._lint != "off":
        failing = campaign.precheck_body()
        failing += campaign.validate_scripts(config_list)
        if failing:
            raise CampaignScriptError(failing)
    spec = SweepSpec(
        body=campaign._body, seed=campaign._seed, configs=config_list,
        telemetry=telemetry, oracle=oracle, lint=campaign._lint,
        group=group, meta=dict(meta or {}))
    if workers == "auto":
        import os
        workers = max(2, min(os.cpu_count() or 2, 8))
    coordinator = FabricCoordinator(spec, fabric_dir, workers=workers,
                                    **dict(fabric_options or {}))
    return coordinator.run()
