"""Bounded delivery-order exploration from a checkpoint (DPOR-lite).

Fault scripts perturb *what* messages say; this module perturbs *when*
things happen.  From one warmed-up prefix checkpoint it enumerates
bounded perturbations of the pending event order -- dropping an
in-flight delivery, suppressing or delaying a protocol timer -- and
runs each alternative schedule to the horizon with the protocol's
oracle pack as the verdict.  A schedule whose trace violates an
invariant is a *finding*: a latent bug made observable purely by event
ordering, no filter script required.

This is deliberately not a full dynamic partial-order reduction: the
schedule space is bounded (``max_perturbations`` perturbations per
schedule, ``max_schedules`` schedules total) and reduction is by
*outcome* -- schedules whose canonical traces are byte-identical to one
already seen collapse into it, which catches the bulk of commutative
interleavings at a fraction of a vector-clock implementation's cost.
The checkpoint engine is what makes the sweep affordable: every
schedule forks the same captured prefix instead of re-simulating the
warmup, so exploring N schedules costs N continuations, not N runs.

Schedules are applied best-effort: a perturbation is addressed by step
index into the *baseline* event order, and an earlier perturbation may
shift what later indices refer to.  That is standard for bounded
schedule fuzzing -- every executed schedule is still a real, legal
event order, which is all the oracle verdict needs.

Reforking is **tree-shaped**: while a schedule executes, the explorer
re-checkpoints its branch every ``recheckpoint_every`` steps (a nested
:meth:`Checkpoint.capture` on the running fork), and every later
schedule forks from the *nearest ancestor* whose applied-perturbation
prefix matches its plan instead of from the flat root -- so a branch
that diverges at step d costs one fork plus the steps past d, not d
re-simulated events.  The per-schedule event counts are tracked
(``ExploreReport.simulated_events``) and the nested tree is bounded by
an LRU :class:`CheckpointPool`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.export import VOLATILE_ATTRS, dump_trace
from repro.core.checkpoint import Checkpoint, CheckpointPool
from repro.core.orchestrator import make_env
from repro.netsim import kinds as K
from repro.netsim.link import Link
from repro.netsim.scheduler import Event
from repro.netsim.timer import Timer
from repro.obs.journal import Journal
from repro.obs.progress import ProgressRenderer
from repro.oracle.fuzz import (DEFAULT_DEPTHS, HORIZONS, _gmp_prefix,
                               _targets, _tcp_prefix, pack_for)

#: perturbation actions by event class; "fire" (run as scheduled) is
#: always legal and never counts as a perturbation
ACTIONS = {"delivery": ("drop", "defer"), "timer": ("drop", "defer")}

#: nested-checkpoint tree budget: snapshots kept live at once
_TREE_ITEMS = 32


def classify_event(event: Event) -> str:
    """What kind of world event a scheduler entry is.

    ``delivery``: an in-flight message arriving over a link;
    ``timer``: a protocol timer firing; ``other``: infrastructure
    (workload writes, daemon starts) the explorer leaves alone.
    """
    owner = getattr(event.callback, "__self__", None)
    if isinstance(owner, Link):
        return "delivery"
    if isinstance(owner, Timer):
        return "timer"
    return "other"


def describe_event(event: Event) -> str:
    """A short human-readable label for one pending event."""
    owner = getattr(event.callback, "__self__", None)
    if isinstance(owner, Link):
        payload = event.args[0] if event.args else None
        detail = type(payload).__name__ if payload is not None else "?"
        return f"deliver[{owner.name}] {detail} @{event.time:.3f}"
    if isinstance(owner, Timer):
        return f"timer[{owner.name}] @{event.time:.3f}"
    name = getattr(event.callback, "__qualname__",
                   getattr(event.callback, "__name__", "event"))
    return f"{name} @{event.time:.3f}"


@dataclass(frozen=True)
class Perturbation:
    """One deviation from the baseline order: ``action`` at ``step``."""

    step: int
    action: str
    description: str

    def render(self) -> str:
        return f"{self.action} step {self.step} ({self.description})"


@dataclass
class ScheduleOutcome:
    """What one explored schedule did."""

    perturbations: Tuple[Perturbation, ...]
    codes: List[str]
    violation_count: int
    outcome_hash: str
    novel: bool          # first schedule reaching this outcome hash

    def render(self) -> str:
        plan = (", ".join(p.render() for p in self.perturbations)
                or "baseline")
        verdict = (",".join(self.codes) if self.codes else "conformant")
        return f"{plan} -> {verdict} ({self.violation_count} violations)"


@dataclass
class ExploreReport:
    """The result of one bounded delivery-order exploration."""

    protocol: str
    target: str
    depth: float
    window: float
    horizon: float
    seed: int
    schedules: int = 0
    distinct_outcomes: int = 0
    baseline_codes: List[str] = field(default_factory=list)
    findings: List[ScheduleOutcome] = field(default_factory=list)
    outcomes: List[ScheduleOutcome] = field(default_factory=list)
    #: scheduler events dispatched across all executed schedules
    simulated_events: int = 0
    #: nested checkpoints captured along explored branches
    nested_captures: int = 0
    #: schedules forked from a nested ancestor instead of the root
    ancestor_forks: int = 0
    #: the re-checkpoint interval this exploration ran with (0: flat)
    recheckpoint_every: int = 0

    def render(self) -> str:
        lines = [f"explore {self.protocol}/{self.target}: "
                 f"{self.schedules} schedules in window "
                 f"[{self.depth:g}, {self.depth + self.window:g}], "
                 f"{self.distinct_outcomes} distinct outcomes, "
                 f"findings {len(self.findings)}"]
        lines.append(f"  simulated {self.simulated_events} events"
                     + (f" ({self.ancestor_forks} ancestor forks, "
                        f"{self.nested_captures} nested checkpoints)"
                        if self.recheckpoint_every else ""))
        if self.baseline_codes:
            lines.append(f"  baseline already violates: "
                         f"{','.join(self.baseline_codes)}")
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        return "\n".join(lines)


def _preflight(protocol: str) -> None:
    """Statically vet the prefix builder before warming anything up.

    The prefix body is about to be simulated to ``depth`` and
    checkpointed; a determinism hazard in it (closure callback,
    wall-clock read) would only surface at capture time, after the
    warm-up is paid for.  Running the SC1xx precheck here moves that
    failure to t=0 with a source position attached.
    """
    from repro.core.orchestrator import CampaignScriptError
    from repro.staticcheck import precheck_body
    prefix = _tcp_prefix if protocol == "tcp" else _gmp_prefix
    report = precheck_body(prefix)
    if not report.ok():
        raise CampaignScriptError([report])


def _prefix_checkpoint(protocol: str, target: str, depth: float,
                       seed: int) -> Checkpoint:
    """Capture the script-free prefix the exploration forks from."""
    env = make_env(seed=seed)
    config = {"protocol": protocol, "target": target}
    if protocol == "tcp":
        roots = _tcp_prefix(env, config, depth)
    else:
        roots = _gmp_prefix(env, config, depth)
    return Checkpoint.capture(
        env, roots, label=f"explore/{protocol}/{target}@{depth:g}")


class _Tree:
    """The nested-checkpoint tree one exploration grows and reforks from.

    Nodes are keyed ``(applied_pairs, step)``: the world after ``step``
    baseline-window iterations with exactly the perturbations in
    ``applied_pairs`` applied.  A later plan reforks from the deepest
    live node whose applied prefix equals the plan's own entries below
    that step -- never from a node that applied something the plan does
    not want, because keys record what a branch *actually* did, not
    what its plan asked for.  Nodes are captured only along branches a
    longer plan could still extend (fewer than ``max_prefix``
    perturbations applied) and live in an LRU-bounded
    :class:`CheckpointPool`.
    """

    def __init__(self, root: Checkpoint, *, every: int, max_prefix: int,
                 journal: Optional[Journal] = None):
        self.root = root
        self.every = every
        self.max_prefix = max_prefix
        self.pool = CheckpointPool(max_items=_TREE_ITEMS)
        self._applied: Dict[Any, Tuple[Perturbation, ...]] = {}
        self.journal = journal
        self.captures = 0

    def start_for(self, plan: Dict[int, str]
                  ) -> Tuple[Checkpoint, int, Tuple[Perturbation, ...]]:
        """The nearest ancestor to fork for ``plan``: deepest match wins."""
        best = (self.root, 0, ())
        for key in self.pool.keys():
            pairs, step = key
            if step <= best[1]:
                continue
            prefix = {s: a for s, a in plan.items() if s < step}
            if len(pairs) == len(prefix) and dict(pairs) == prefix:
                checkpoint = self.pool.get(key)
                if checkpoint is not None:
                    best = (checkpoint, step, self._applied.get(key, ()))
        return best

    def maybe_capture(self, forked, step: int,
                      applied: List[Perturbation]) -> None:
        """Re-checkpoint a running branch at its ``every``-step marks."""
        if self.every <= 0 or step <= 0 or step % self.every:
            return
        if len(applied) >= self.max_prefix:
            return  # no longer plan can extend this branch
        key = (tuple((p.step, p.action) for p in applied), step)
        if key in self.pool:
            return
        checkpoint = Checkpoint.capture(
            forked, label=f"{self.root.label}+{len(applied)}p@{step}",
            audit=False)
        self.pool.put(key, checkpoint)
        self._applied[key] = tuple(applied)
        self.captures += 1
        if self.journal is not None:
            self.journal.record(
                K.CAMPAIGN_CHECKPOINT_CAPTURE, nested=True, step=step,
                prefix_perturbations=len(applied),
                label=checkpoint.label, identity=checkpoint.identity,
                parent=checkpoint.parent.identity)


def _run_schedule(checkpoint: Checkpoint, plan: Dict[int, str], *,
                  window: float, horizon: float, defer_delta: float,
                  oracle, tree: Optional[_Tree] = None,
                  counters: Optional[Dict[str, int]] = None
                  ) -> Tuple[Tuple[Perturbation, ...], List, str]:
    """Execute one schedule; returns (applied plan, violations, hash).

    With a ``tree``, the schedule starts from its nearest ancestor
    checkpoint (skipping every event that ancestor already simulated)
    and leaves new nested checkpoints along its own branch for later
    schedules; the result is byte-identical to a flat root fork, only
    the number of re-simulated events changes (tracked in
    ``counters``).
    """
    if tree is not None:
        start, start_step, prefix_applied = tree.start_for(plan)
    else:
        start, start_step, prefix_applied = checkpoint, 0, ()
    forked = start.fork()
    env = forked.env
    scheduler = env.scheduler
    dispatched_before = scheduler.dispatched_count
    end = checkpoint.time + window
    step = start_step
    applied: List[Perturbation] = list(prefix_applied)
    while True:
        event = scheduler.peek_entry()
        if event is None or event.time > end:
            break
        action = plan.get(step, "fire")
        if action != "fire" and classify_event(event) in ACTIONS:
            applied.append(Perturbation(step, action,
                                        describe_event(event)))
            event.cancel()
            if action == "defer":
                scheduler.schedule_at(event.time + defer_delta,
                                      event.callback, *event.args)
        else:
            scheduler.step()
        step += 1
        if tree is not None:
            tree.maybe_capture(forked, step, applied)
    env.run_until(horizon)
    if counters is not None:
        counters["events"] += scheduler.dispatched_count - dispatched_before
        if start_step > 0:
            counters["ancestor_forks"] += 1
    from repro.oracle import evaluate
    violations = evaluate(env.trace, oracle()).violations
    digest = hashlib.sha256(
        dump_trace(env.trace,
                   exclude_attrs=VOLATILE_ATTRS).encode()).hexdigest()
    return tuple(applied), violations, digest[:16]


def _survey(checkpoint: Checkpoint, *, window: float
            ) -> List[Tuple[str, str]]:
    """The baseline event order inside the window: (class, label) per
    step, observed by single-stepping a throwaway fork."""
    forked = checkpoint.fork()
    scheduler = forked.env.scheduler
    end = checkpoint.time + window
    steps: List[Tuple[str, str]] = []
    while True:
        event = scheduler.peek_entry()
        if event is None or event.time > end:
            break
        steps.append((classify_event(event), describe_event(event)))
        scheduler.step()
    return steps


def _plans(steps: List[Tuple[str, str]], *, max_perturbations: int,
           max_schedules: int) -> List[Dict[int, str]]:
    """Bounded perturbation plans over the surveyed baseline order.

    Baseline first, then every single perturbation in step order, then
    pairs, up to ``max_schedules`` plans total.
    """
    singles: List[Tuple[int, str]] = []
    for index, (kind, _label) in enumerate(steps):
        for action in ACTIONS.get(kind, ()):
            singles.append((index, action))
    plans: List[Dict[int, str]] = [{}]
    for index, action in singles:
        if len(plans) >= max_schedules:
            return plans
        plans.append({index: action})
    if max_perturbations >= 2:
        for i, (index_a, action_a) in enumerate(singles):
            for index_b, action_b in singles[i + 1:]:
                if index_a == index_b:
                    continue
                if len(plans) >= max_schedules:
                    return plans
                plans.append({index_a: action_a, index_b: action_b})
    return plans


def explore(protocol: str = "gmp", target: str = "self_death", *,
            seed: int = 0, depth: Optional[float] = None,
            window: float = 1.5, horizon: Optional[float] = None,
            max_schedules: int = 64, max_perturbations: int = 1,
            defer_delta: float = 4.0, recheckpoint_every: int = 8,
            progress: Optional[Callable[[str], None]] = None,
            journal=None) -> ExploreReport:
    """Explore bounded delivery-order schedules of one protocol target.

    The world is warmed to ``depth`` (default: the protocol's stock
    filter-install time) and checkpointed once; every schedule forks
    it.  Pending events inside ``[depth, depth + window]`` may be
    dropped or deferred by ``defer_delta`` seconds; the run then
    continues undisturbed to ``horizon`` and the protocol's oracle pack
    judges the trace.  Deterministic in all arguments: the same call
    always explores the same schedules.

    ``recheckpoint_every`` (default 8, ``0`` disables) grows a
    checkpoint *tree*: executing schedules re-checkpoint their branch
    every that many steps, and later schedules refork from the nearest
    matching ancestor instead of the root -- same outcomes (the
    reported hashes are byte-identical to the flat path's), strictly
    fewer re-simulated events (``ExploreReport.simulated_events``).

    ``journal`` (a :class:`~repro.obs.journal.Journal` or a path)
    attaches the campaign flight recorder: preflight, the prefix
    capture (root and nested), one ``campaign.run_end`` per executed
    schedule (verdict codes, outcome hash, novelty), and the closing
    summary are appended crash-safe, so an interrupted exploration
    still reports its partial outcome census.
    """
    valid = _targets(protocol) + ("fixed",)
    if target not in valid:
        raise ValueError(f"unknown {protocol} target {target!r}; "
                         f"expected one of {valid}")
    journal_obj, journal_owned = Journal.ensure(journal)
    try:
        return _explore_journaled(
            protocol, target, journal_obj, seed=seed, depth=depth,
            window=window, horizon=horizon, max_schedules=max_schedules,
            max_perturbations=max_perturbations, defer_delta=defer_delta,
            recheckpoint_every=recheckpoint_every, progress=progress)
    finally:
        if journal_owned:
            journal_obj.close()


def _explore_journaled(protocol: str, target: str,
                       journal: Optional[Journal], *, seed: int,
                       depth: Optional[float], window: float,
                       horizon: Optional[float], max_schedules: int,
                       max_perturbations: int, defer_delta: float,
                       recheckpoint_every: int,
                       progress: Optional[Callable[[str], None]]
                       ) -> ExploreReport:
    depth = DEFAULT_DEPTHS[protocol] if depth is None else float(depth)
    horizon = HORIZONS[protocol] if horizon is None else float(horizon)
    if journal is not None:
        journal.start("explore", protocol=protocol, target=target,
                      seed=seed, depth=depth, window=window,
                      horizon=horizon, max_schedules=max_schedules,
                      max_perturbations=max_perturbations,
                      defer_delta=defer_delta)
    try:
        _preflight(protocol)
    except Exception:
        if journal is not None:
            journal.record(K.CAMPAIGN_PREFLIGHT, ok=False)
            journal.record(K.CAMPAIGN_END, status="preflight_failed",
                           executed=0)
        raise
    if journal is not None:
        journal.record(K.CAMPAIGN_PREFLIGHT, ok=True)
        with journal.phase("capture"):
            checkpoint = _prefix_checkpoint(protocol, target, depth, seed)
        journal.record(K.CAMPAIGN_CHECKPOINT_CAPTURE, target=target,
                       depth=depth, label=checkpoint.label,
                       identity=checkpoint.identity)
    else:
        checkpoint = _prefix_checkpoint(protocol, target, depth, seed)
    oracle = pack_for(protocol)
    steps = _survey(checkpoint, window=window)
    report = ExploreReport(protocol=protocol, target=target, depth=depth,
                           window=window, horizon=horizon, seed=seed,
                           recheckpoint_every=max(0, recheckpoint_every))
    tree = (_Tree(checkpoint, every=recheckpoint_every,
                  max_prefix=max_perturbations, journal=journal)
            if recheckpoint_every > 0 else None)
    counters = {"events": 0, "ancestor_forks": 0}
    renderer = (ProgressRenderer(f"explore {protocol}/{target}",
                                 total=None, unit="schedules",
                                 sink=progress)
                if progress is not None else None)
    seen_hashes: Dict[str, int] = {}
    seen_findings: set = set()
    status = "ok"
    try:
        for plan in _plans(steps, max_perturbations=max_perturbations,
                           max_schedules=max_schedules):
            applied, violations, outcome_hash = _run_schedule(
                checkpoint, plan, window=window, horizon=horizon,
                defer_delta=defer_delta, oracle=oracle, tree=tree,
                counters=counters)
            codes = sorted({v.code for v in violations})
            novel = outcome_hash not in seen_hashes
            seen_hashes.setdefault(outcome_hash, report.schedules)
            outcome = ScheduleOutcome(perturbations=applied, codes=codes,
                                      violation_count=len(violations),
                                      outcome_hash=outcome_hash,
                                      novel=novel)
            if journal is not None:
                plan_label = (", ".join(p.render() for p in applied)
                              or "baseline")
                journal.record(
                    K.CAMPAIGN_RUN_END, index=report.schedules,
                    label=plan_label, target=target, ok=not codes,
                    codes=codes, violations=len(violations),
                    outcome=outcome_hash, new_coverage=int(novel),
                    coverage_total=len(seen_hashes))
            report.schedules += 1
            report.outcomes.append(outcome)
            if not applied:
                report.baseline_codes = codes
            if codes and novel and tuple(codes) not in seen_findings:
                seen_findings.add(tuple(codes))
                report.findings.append(outcome)
                if progress is not None:
                    progress(f"[explore] {outcome.render()}")
            if renderer is not None and report.schedules % 16 == 0:
                renderer.update(report.schedules,
                                distinct_outcomes=len(seen_hashes),
                                findings=len(report.findings))
    except BaseException:
        status = "failed"
        raise
    finally:
        report.distinct_outcomes = len(seen_hashes)
        report.simulated_events = counters["events"]
        report.ancestor_forks = counters["ancestor_forks"]
        report.nested_captures = tree.captures if tree is not None else 0
        if journal is not None:
            journal.record(K.CAMPAIGN_END, status=status,
                           executed=report.schedules,
                           distinct_outcomes=report.distinct_outcomes,
                           findings=len(report.findings),
                           simulated_events=report.simulated_events,
                           ancestor_forks=report.ancestor_forks,
                           nested_captures=report.nested_captures)
    return report
