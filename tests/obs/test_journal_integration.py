"""Engine wiring: every long-running engine emits a faithful journal.

The headline test is kill-and-replay: a fuzz sweep SIGKILLed mid-run
leaves a journal from which the campaign report reproduces the exact
partial scorecard an in-process run of the surviving prefix produces.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.orchestrator import Campaign, CampaignScriptError, RunCache
from repro.netsim import kinds as K
from repro.obs.campaign_report import (render_text, summarize_journal,
                                       summary_to_json)
from repro.obs.journal import Journal, replay_journal
from repro.oracle.fuzz import run_fuzz
from repro.oracle.shrink import shrink_finding

from tests.core.test_campaign_parallel import _sweep_configs, sweep_body

REPO = Path(__file__).resolve().parents[2]


class TestCampaignJournal:
    def test_serial_sweep_records_full_lifecycle(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=3, events=50), journal=path)
        replay = replay_journal(path)
        assert replay.complete and replay.torn_tail is None
        assert replay.events[0].get("engine") == "campaign"
        assert replay.events[0].get("configs") == 3
        assert len(replay.of(K.CAMPAIGN_RUN_START)) == 3
        ends = replay.of(K.CAMPAIGN_RUN_END)
        assert [e.get("index") for e in ends] == [0, 1, 2]
        assert all(e.get("ok") for e in ends)
        assert all(e.get("telemetry") for e in ends)
        assert replay.last(K.CAMPAIGN_END).get("status") == "ok"
        phases = [e.get("name") for e in replay.of(K.CAMPAIGN_PHASE_START)]
        assert phases == ["preflight", "dispatch"]

    def test_journal_does_not_perturb_results(self, tmp_path):
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs(count=3, events=50)
        bare = campaign.run(configs)
        journaled = campaign.run(configs, journal=tmp_path / "j.jsonl")
        assert [r.result for r in bare] == [r.result for r in journaled]

    def test_parallel_journal_matches_serial_on_stable_fields(self, tmp_path):
        configs = _sweep_configs(count=4, events=50)
        campaign = Campaign(sweep_body, seed=7)
        campaign.run(configs, journal=tmp_path / "serial.jsonl")
        campaign.run(configs, workers=2, journal=tmp_path / "parallel.jsonl")
        serial = summarize_journal(tmp_path / "serial.jsonl")
        parallel = summarize_journal(tmp_path / "parallel.jsonl")
        assert (sorted(r.stable_key() for r in serial.runs)
                == sorted(r.stable_key() for r in parallel.runs))
        assert parallel.completed
        names = [name for name, _, _ in parallel.phases]
        assert names == ["preflight", "dispatch", "merge"] or \
            names == ["dispatch", "merge"]

    def test_cache_hits_record_cached_run_end(self, tmp_path):
        configs = _sweep_configs(count=2, events=50)
        cache = RunCache(tmp_path / "cache")
        campaign = Campaign(sweep_body, seed=7)
        campaign.run(configs, cache=cache)
        campaign.run(configs, cache=cache, journal=tmp_path / "j.jsonl")
        summary = summarize_journal(tmp_path / "j.jsonl")
        assert summary.executed == 2
        assert all(row.cached for row in summary.runs)
        assert summary.end.get("cached") == 2

    def test_body_crash_records_worker_error_then_end(self, tmp_path):
        def dying_body(env, config):
            if config["boom"]:
                raise RuntimeError("planted")
            return {}

        path = tmp_path / "j.jsonl"
        with pytest.raises(RuntimeError, match="planted"):
            Campaign(dying_body, seed=1).run(
                [{"boom": False}, {"boom": True}], journal=path)
        replay = replay_journal(path)
        errors = replay.of(K.CAMPAIGN_WORKER_ERROR)
        assert len(errors) == 1 and "planted" in errors[0].get("error")
        assert replay.last(K.CAMPAIGN_END).get("status") == "failed"

    def test_preflight_failure_ends_journal(self, tmp_path):
        def noop_body(env, config):
            return {}

        path = tmp_path / "j.jsonl"
        with pytest.raises(CampaignScriptError):
            Campaign(noop_body, seed=1).run(
                [{"script": "xDropp cur_msg"}], journal=path)
        replay = replay_journal(path)
        assert replay.of(K.CAMPAIGN_PREFLIGHT)[0].get("ok") is False
        assert replay.last(K.CAMPAIGN_END).get("status") == "preflight_failed"

    def test_progress_sink_receives_renderer_lines(self, tmp_path):
        lines = []
        Campaign(sweep_body, seed=7).run(
            _sweep_configs(count=2, events=50), progress=lines.append)
        assert lines and all(line.startswith("[campaign] ")
                             for line in lines)
        assert lines[-1].startswith("[campaign] 2/2 configs")


class TestFuzzJournal:
    def test_fuzz_journal_matches_report(self, tmp_path):
        path = tmp_path / "j.jsonl"
        report = run_fuzz("gmp", seed=0, budget=8, journal=path)
        summary = summarize_journal(path)
        assert summary.completed
        assert summary.engine == "fuzz"
        assert summary.executed == report.executed
        assert len(summary.findings) == len(report.findings)
        assert summary.coverage_total == len(report.coverage)
        assert summary.corpus_size == len(report.corpus)
        assert summary.end.get("status") == "ok"

    def test_engine_path_records_checkpoint_captures(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_fuzz("gmp", seed=0, budget=8, checkpoint_depth=8.0,
                 journal=path)
        replay = replay_journal(path)
        captures = replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert captures
        assert all(e.get("depth") == 8.0 for e in captures)

    def test_shrink_appends_to_the_sweep_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            report = run_fuzz("gmp", seed=0, budget=8, journal=journal)
            assert report.findings
            shrink_finding(report.findings[0], journal=journal)
        replay = replay_journal(path)
        steps = replay.of(K.CAMPAIGN_SHRINK_STEP)
        assert steps
        assert all(e.get("code") == report.findings[0].codes[0]
                   for e in steps)
        # shared journal: one flight record, fuzz start only
        assert len(replay.of(K.CAMPAIGN_START)) == 1

    def test_owned_shrink_journal_is_self_contained(self, tmp_path):
        report = run_fuzz("gmp", seed=0, budget=8)
        assert report.findings
        path = tmp_path / "shrink.jsonl"
        shrink_finding(report.findings[0], journal=path)
        summary = summarize_journal(path)
        assert summary.engine == "shrink"
        assert summary.completed
        assert summary.shrink_steps > 0


class TestExploreJournal:
    def test_explore_journal_matches_report(self, tmp_path):
        from repro.oracle.explore import explore
        path = tmp_path / "j.jsonl"
        report = explore("gmp", "self_death", seed=0, max_schedules=6,
                         journal=path)
        summary = summarize_journal(path)
        assert summary.completed
        assert summary.engine == "explore"
        assert summary.executed == report.schedules
        roots = [c for c in summary.checkpoints if not c.get("nested")]
        nested = [c for c in summary.checkpoints if c.get("nested")]
        assert len(roots) == 1
        assert len(nested) == report.nested_captures
        assert summary.end.get("simulated_events") == \
            report.simulated_events
        assert [name for name, _, _ in summary.phases] == ["capture"]
        assert summary.end.get("distinct_outcomes") == \
            report.distinct_outcomes

    def test_bad_target_leaves_no_journal(self, tmp_path):
        from repro.oracle.explore import explore
        path = tmp_path / "j.jsonl"
        with pytest.raises(ValueError):
            explore("gmp", "no_such_target", journal=path)
        assert not path.exists()


class TestKillAndReplay:
    """SIGKILL a sweep; the journal reproduces the partial scorecard."""

    def _spawn_sweep(self, journal):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        code = (
            "from repro.oracle.fuzz import run_fuzz\n"
            f"run_fuzz('gmp', seed=0, budget=10_000, "
            f"journal={str(journal)!r})\n")
        return subprocess.Popen([sys.executable, "-c", code], env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    def _wait_for_run_ends(self, journal, want, deadline_s=120.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if journal.exists():
                replay = replay_journal(journal)
                ends = replay.of(K.CAMPAIGN_RUN_END)
                if len(ends) >= want:
                    return
            time.sleep(0.05)
        raise AssertionError(f"journal never reached {want} run_end events")

    def test_sigkilled_sweep_replays_exact_partial_scorecard(self, tmp_path):
        journal = tmp_path / "killed.jsonl"
        proc = self._spawn_sweep(journal)
        try:
            self._wait_for_run_ends(journal, want=8)
        finally:
            proc.kill()
            proc.wait()
        killed = summarize_journal(journal)
        assert not killed.completed
        assert killed.executed >= 8

        # The fuzz loop merges per batch (batch = max(4, workers*2) = 4),
        # so any journaled prefix that is a multiple of 4 is bitwise the
        # prefix an intact run of that budget would produce.
        prefix = (killed.executed // 4) * 4
        reference_journal = tmp_path / "reference.jsonl"
        run_fuzz("gmp", seed=0, budget=prefix, journal=reference_journal)
        reference = summarize_journal(reference_journal)
        assert ([row.stable_key() for row in killed.runs[:prefix]]
                == [row.stable_key() for row in reference.runs])

        # and the rendered partial scorecard agrees on every headline
        killed_json = summary_to_json(killed)
        reference_json = summary_to_json(reference)
        truncated_runs = killed_json["runs"][:prefix]
        assert truncated_runs == reference_json["runs"]
        assert (killed_json["codes"] == reference_json["codes"]
                or killed.executed == prefix)
        text = render_text(killed)
        assert "INTERRUPTED" in text
        assert f"executed {killed.executed}/10000 runs" in text
