"""`repro sweep` / `repro report --campaign DIR` end to end."""

import json
import subprocess
import sys

from tests.fabric.rig import REPO_ROOT, campaign_ends, rig_env


def _repro(*argv, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv], cwd=str(REPO_ROOT),
        env=rig_env(), capture_output=True, text=True, timeout=timeout)


def _sweep(journal_dir, *extra):
    return _repro("sweep", "--protocol", "gmp", "--targets", "fixed",
                  "--count", "2", "--seed", "7", "--journal-dir",
                  str(journal_dir), "--stable", *extra)


def _stable_section(stdout):
    lines = stdout.splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.startswith("stable scorecard:"))
    return "\n".join(lines[start:])


def test_sockets_sweep_matches_local_backend(tmp_path):
    local = _sweep(tmp_path / "local", "--backend", "local")
    assert local.returncode == 0, local.stderr
    sockets = _sweep(tmp_path / "sockets", "--backend", "sockets",
                     "--workers", "2")
    assert sockets.returncode == 0, sockets.stderr
    # the user-facing acceptance check: identical stable scorecards
    assert _stable_section(sockets.stdout) \
        == _stable_section(local.stdout)

    # --resume performs zero new runs and reprints the same scorecard
    resumed = _repro("sweep", "--resume", str(tmp_path / "sockets"),
                     "--backend", "sockets", "--workers", "2",
                     "--stable")
    assert resumed.returncode == 0, resumed.stderr
    assert _stable_section(resumed.stdout) \
        == _stable_section(sockets.stdout)
    end = campaign_ends(tmp_path / "sockets")[-1]
    assert end["executed"] == 0 and end["cached"] == 2


def test_report_campaign_accepts_fabric_directory(tmp_path):
    sweep = _sweep(tmp_path / "fabric", "--backend", "sockets",
                   "--workers", "2")
    assert sweep.returncode == 0, sweep.stderr
    report = _repro("report", "--campaign", str(tmp_path / "fabric"))
    assert report.returncode == 0, report.stderr
    assert "campaign" in report.stdout
    assert "2" in report.stdout
    # JSON mode merges the same rows
    as_json = _repro("report", "--campaign", str(tmp_path / "fabric"),
                     "--format", "json")
    assert as_json.returncode == 0, as_json.stderr
    payload = json.loads(as_json.stdout)
    assert payload["executed"] == 2
    assert len(payload["runs"]) == 2


def test_sweep_requires_a_campaign_directory(tmp_path):
    missing = _repro("sweep", "--protocol", "gmp", "--count", "1")
    assert missing.returncode == 2
    assert "--journal-dir" in missing.stderr


def test_resume_nonexistent_directory_fails_cleanly(tmp_path):
    gone = _repro("sweep", "--resume", str(tmp_path / "nowhere"),
                  "--backend", "sockets")
    assert gone.returncode == 2
    assert "resume" in gone.stderr
