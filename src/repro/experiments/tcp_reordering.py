"""Experiment TCP-5 (paper §4.1, Experiment 5): message reordering.

"The send filter of the fault injection layer was configured to send two
outgoing segments out of order ...  In order to make sure that the second
segment would actually arrive at the receiver first, the first segment was
delayed by three seconds, and any retransmissions of the second segment
were dropped."

Here the x-Kernel machine is the *sender* (the PFI layer manipulates its
outgoing segments) and the vendor machine is the receiver under test.
Expected for all four vendors (RFC-1122 SHOULD): the early-arriving second
segment is queued, and when the first segment lands the receiver
acknowledges the data from both segments at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core import ScriptContext
from repro.experiments.tcp_common import VENDOR_ADDR, build_tcp_testbed
from repro.tcp import VENDORS, VendorProfile

FIRST_SEGMENT_DELAY = 3.0


@dataclass
class ReorderingResult:
    """One row of the Experiment 5 summary."""

    vendor: str
    second_segment_queued: bool
    acked_both_at_once: bool
    data_delivered_in_order: bool
    duplicate_deliveries: int


def reorder_send_filter(delay: float = FIRST_SEGMENT_DELAY):
    """Send filter: delay the 1st data segment; drop retransmissions."""
    def send_filter(ctx: ScriptContext) -> None:
        if ctx.msg_type() != "DATA":
            return
        seq = ctx.field("seq")
        seen = ctx.state.setdefault("seen_seqs", set())
        if seq in seen:
            # a retransmission: the paper's script drops these so the
            # reordering effect is observed cleanly
            ctx.log("retransmission dropped")
            ctx.drop()
            return
        seen.add(seq)
        if ctx.state.get("count", 0) == 0:
            ctx.state["count"] = 1
            ctx.state["first_seq"] = seq
            ctx.delay(delay)
            ctx.log(f"first segment delayed {delay}s")
        else:
            ctx.state["count"] = ctx.state.get("count", 0) + 1
    return send_filter


def execute(vendor: VendorProfile, *, seed: int = 0,
            max_time: float = 30.0):
    """Drive Experiment 5; returns ``(testbed, client, server)``."""
    testbed = build_tcp_testbed(vendor, seed=seed)
    # x-Kernel machine actively opens toward the vendor machine
    server = testbed.vendor_tcp.listen(80)
    client = testbed.xkernel_tcp.open_connection(
        local_port=6000, remote_address=VENDOR_ADDR, remote_port=80)
    client.connect()
    testbed.env.run_until(0.5)
    if not client.established:
        raise RuntimeError("handshake did not complete")

    testbed.pfi.set_send_filter(reorder_send_filter())
    payload_a = b"A" * client.profile.mss
    payload_b = b"B" * client.profile.mss
    client.send(payload_a)
    testbed.scheduler.schedule(0.05, client.send, payload_b)
    testbed.env.run_until(max_time)
    return testbed, client, server


def run_reordering_experiment(vendor: VendorProfile, *, seed: int = 0,
                              max_time: float = 30.0) -> ReorderingResult:
    """Run Experiment 5 against one vendor (as the receiver)."""
    testbed, client, server = execute(vendor, seed=seed, max_time=max_time)
    payload_a = b"A" * client.profile.mss
    payload_b = b"B" * client.profile.mss
    trace = testbed.trace
    vendor_conn = "vendor:80"
    queued = trace.count("tcp.ooo_queued", conn=vendor_conn) > 0
    # "the receiver acked the data from both segments" -- one cumulative
    # ACK must jump past both payloads
    both_len = len(payload_a) + len(payload_b)
    expected_ack = (client.iss + 1 + both_len) % (1 << 32)
    acks = [e for e in trace.entries("tcp.transmit", conn=vendor_conn)
            if e.get("msg_type") in ("ACK", "DATA")
            and e.get("ack") == expected_ack]
    delivered = bytes(server.delivered)
    return ReorderingResult(
        vendor=vendor.name,
        second_segment_queued=queued,
        acked_both_at_once=bool(acks),
        data_delivered_in_order=delivered == payload_a + payload_b,
        duplicate_deliveries=max(0, len(delivered) - both_len),
    )


def run_all(seed: int = 0) -> Dict[str, ReorderingResult]:
    """Experiment 5 across all vendors."""
    return {name: run_reordering_experiment(profile, seed=seed)
            for name, profile in VENDORS.items()}


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import tcp_pack
    return tcp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite."""
    for name, profile in VENDORS.items():
        yield f"reordering/{name}", execute(profile, seed=seed)[0].trace
