"""Unit tests for the checkpoint/fork engine (repro.core.checkpoint)."""

import pytest

from repro.core.checkpoint import (Checkpoint, CheckpointError,
                                   CheckpointPool, audit_scheduler)
from repro.core.orchestrator import make_env


class Counter:
    """A minimal self-rescheduling rig: bound-method callbacks only."""

    def __init__(self, env, period=1.0):
        self.env = env
        self.fired = 0
        env.scheduler.schedule(period, self.tick, period)

    def tick(self, period):
        self.fired += 1
        self.env.trace.record("counter.tick", n=self.fired)
        self.env.scheduler.schedule(period, self.tick, period)


def warmed_env(depth=5.0):
    env = make_env(seed=0)
    counter = Counter(env)
    env.run_until(depth)
    return env, counter


# ----------------------------------------------------------------------
# capture / fork semantics
# ----------------------------------------------------------------------

def test_fork_continues_where_capture_left_off():
    env, counter = warmed_env(5.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    forked = cp.fork()
    assert forked.env.scheduler.now == 5.0
    assert forked["counter"].fired == 5
    forked.env.run_until(10.0)
    assert forked["counter"].fired == 10


def test_capture_leaves_the_original_running():
    env, counter = warmed_env(5.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    forked = cp.fork()
    forked.env.run_until(10.0)
    # the original world never moved
    assert env.scheduler.now == 5.0
    assert counter.fired == 5
    # ...and still runs to the same place the fork reached
    env.run_until(10.0)
    assert counter.fired == forked["counter"].fired == 10


def test_forks_are_mutually_independent():
    env, counter = warmed_env(3.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    a, b = cp.fork(), cp.fork()
    a.env.run_until(20.0)
    assert b.env.scheduler.now == 3.0
    b.env.run_until(20.0)
    assert a["counter"].fired == b["counter"].fired == 20
    assert cp.forks == 2


def test_trace_prefix_is_shared_not_copied():
    env, counter = warmed_env(4.0)
    cp = Checkpoint.capture(env, {"counter": counter})
    forked = cp.fork()
    prefix = list(env.trace)
    assert [a is b for a, b in zip(prefix, list(forked.env.trace))] \
        == [True] * len(prefix)
    forked.env.run_until(6.0)
    assert len(forked.env.trace) > len(prefix)
    assert list(env.trace) == prefix  # parent undisturbed


def test_capture_compacts_tombstones_first():
    env, counter = warmed_env(2.0)
    doomed = [env.scheduler.schedule(50.0 + i, counter.tick, 1.0)
              for i in range(10)]
    for event in doomed:
        event.cancel()
    before = env.scheduler.compactions
    cp = Checkpoint.capture(env, {"counter": counter})
    assert env.scheduler.compactions == before + 1
    assert cp.fork().env.scheduler.pending_count == 1


def test_default_label_and_repr():
    env, _counter = warmed_env(5.0)
    cp = Checkpoint.capture(env)
    assert cp.label == "t=5"
    assert "t=5" in repr(cp)
    assert cp.position == len(env.trace)


# ----------------------------------------------------------------------
# the capture-time audit
# ----------------------------------------------------------------------

def test_capture_rejects_closure_callbacks():
    env, _counter = warmed_env(1.0)
    leaked = []
    env.scheduler.schedule(1.0, lambda: leaked.append(1))
    with pytest.raises(CheckpointError, match="closure"):
        Checkpoint.capture(env)


def test_capture_rejects_world_smuggling_defaults():
    env, counter = warmed_env(1.0)

    def poke(target=counter):
        target.fired += 1

    env.scheduler.schedule(1.0, poke)
    with pytest.raises(CheckpointError, match="default"):
        Checkpoint.capture(env)


def test_audit_accepts_clean_heaps_and_atomic_defaults():
    env, _counter = warmed_env(1.0)

    def ping(n=3, tag="x"):
        return n, tag

    env.scheduler.schedule(1.0, ping)
    assert audit_scheduler(env.scheduler) == []


def test_audit_recurses_into_partials():
    import functools
    env, _counter = warmed_env(1.0)
    captured = []
    env.scheduler.schedule(1.0, functools.partial(
        lambda: captured.append(1)))
    issues = audit_scheduler(env.scheduler)
    assert len(issues) == 1 and "closure" in issues[0]


def test_audit_false_skips_the_check():
    env, _counter = warmed_env(1.0)
    env.scheduler.schedule(1.0, lambda: None)
    Checkpoint.capture(env, audit=False)  # does not raise


# ----------------------------------------------------------------------
# re-seeding forks
# ----------------------------------------------------------------------

def test_fork_reseed_matches_cold_run():
    env, _counter = warmed_env(2.0)
    stream = env.dist("noise", "a")  # derived, but never drawn from
    cp = Checkpoint.capture(env)
    forked = cp.fork(seed=7)
    assert forked.env.seed == 7
    cold = make_env(seed=7)
    assert forked.env.dists[0].dst_uniform(0, 1) \
        == cold.dist("noise", "a").dst_uniform(0, 1)
    assert stream.draws == 0  # the original stream was never touched


def test_fork_same_seed_skips_reseed():
    env, _counter = warmed_env(2.0)
    stream = env.dist("noise")
    stream.dst_uniform(0, 1)  # consumed -- reseed would refuse
    cp = Checkpoint.capture(env)
    cp.fork(seed=0)  # captured seed: no reseed attempted, no error


def test_fork_reseed_refuses_consumed_streams():
    env, _counter = warmed_env(2.0)
    env.dist("noise").dst_uniform(0, 1)
    cp = Checkpoint.capture(env)
    with pytest.raises(CheckpointError, match="re-seeded"):
        cp.fork(seed=9)


# ----------------------------------------------------------------------
# identity digests
# ----------------------------------------------------------------------

def test_identity_stable_across_identical_captures():
    def build():
        env, counter = warmed_env(5.0)
        return Checkpoint.capture(env, {"counter": counter}, label="x")
    assert build().identity == build().identity


def test_identity_distinguishes_depth_label_and_seed():
    def capture(depth=5.0, label="x", seed=0):
        env = make_env(seed=seed)
        Counter(env)
        env.run_until(depth)
        return Checkpoint.capture(env, label=label).identity

    base = capture()
    assert capture(depth=6.0) != base
    assert capture(label="y") != base
    assert capture(seed=1) != base


# ----------------------------------------------------------------------
# checkpoint trees: capture on a fork
# ----------------------------------------------------------------------

def test_capture_on_fork_records_parent_and_depth():
    env, counter = warmed_env(3.0)
    root = Checkpoint.capture(env, {"counter": counter})
    branch = root.fork()
    branch.env.run_until(6.0)
    child = Checkpoint.capture(branch)
    assert child.parent is root
    assert root.depth == 0 and child.depth == 1
    assert "depth=1" in repr(child)
    grandbranch = child.fork()
    grandbranch.env.run_until(9.0)
    grandchild = Checkpoint.capture(grandbranch)
    assert grandchild.depth == 2


def test_nested_capture_inherits_fork_roots():
    env, counter = warmed_env(2.0)
    root = Checkpoint.capture(env, {"counter": counter})
    branch = root.fork()
    branch.env.run_until(5.0)
    child = Checkpoint.capture(branch)  # no explicit roots
    refork = child.fork()
    assert refork["counter"].fired == 5
    refork.env.run_until(8.0)
    assert refork["counter"].fired == 8


def test_nested_fork_matches_flat_run():
    # root -> branch -> nested capture -> fork must land exactly where
    # one uninterrupted run of the same world lands
    env, counter = warmed_env(2.0)
    root = Checkpoint.capture(env, {"counter": counter})
    branch = root.fork()
    branch.env.run_until(6.0)
    child = Checkpoint.capture(branch)
    leaf = child.fork()
    leaf.env.run_until(12.0)
    env.run_until(12.0)  # the original, never checkpointed past t=2
    assert leaf["counter"].fired == counter.fired == 12
    assert list(leaf.env.trace)[-1].time == list(env.trace)[-1].time


def test_nested_capture_leaves_the_branch_running():
    env, counter = warmed_env(2.0)
    root = Checkpoint.capture(env, {"counter": counter})
    branch = root.fork()
    branch.env.run_until(5.0)
    Checkpoint.capture(branch)
    branch.env.run_until(9.0)  # the branch keeps going after capture
    assert branch["counter"].fired == 9


def test_nested_identity_chains_the_parent_digest():
    env, counter = warmed_env(2.0)
    root = Checkpoint.capture(env, {"counter": counter}, label="x")
    branch = root.fork()
    branch.env.run_until(5.0)
    nested = Checkpoint.capture(branch, label="x")
    # same world state, captured flat vs on the branch: the parent link
    # alone must split the identities
    flat_env, flat_counter = warmed_env(5.0)
    flat = Checkpoint.capture(flat_env, {"counter": flat_counter},
                              label="x")
    assert nested.identity != flat.identity
    assert nested.identity != root.identity


# ----------------------------------------------------------------------
# CheckpointPool
# ----------------------------------------------------------------------

def _pooled_checkpoint(depth=2.0):
    env, counter = warmed_env(depth)
    return Checkpoint.capture(env, {"counter": counter})


class TestCheckpointPool:
    def test_get_put_and_counters(self):
        pool = CheckpointPool()
        assert pool.get("a") is None and pool.misses == 1
        cp = _pooled_checkpoint()
        pool.put("a", cp)
        assert pool.get("a") is cp
        assert pool.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                "items": 1, "entries": cp.position}
        assert "a" in pool and len(pool) == 1

    def test_max_items_evicts_lru(self):
        pool = CheckpointPool(max_items=2)
        for key in ("a", "b", "c"):
            pool.put(key, _pooled_checkpoint())
        assert pool.keys() == ["b", "c"]
        assert pool.evictions == 1
        pool.get("b")  # refresh: "c" becomes LRU
        pool.put("d", _pooled_checkpoint())
        assert pool.keys() == ["b", "d"]

    def test_max_entries_budget(self):
        small = _pooled_checkpoint(depth=2.0)
        big = _pooled_checkpoint(depth=20.0)
        pool = CheckpointPool(max_entries=small.position + 1)
        pool.put("small", small)
        pool.put("big", big)
        assert pool.keys() == ["big"]  # small evicted to make room

    def test_never_evicts_the_last_item(self):
        oversized = _pooled_checkpoint(depth=30.0)
        pool = CheckpointPool(max_items=1, max_entries=1)
        pool.put("only", oversized)
        assert pool.get("only") is oversized

    def test_clear_keeps_counters(self):
        pool = CheckpointPool()
        pool.put("a", _pooled_checkpoint())
        pool.get("a")
        pool.clear()
        assert len(pool) == 0
        assert pool.hits == 1
