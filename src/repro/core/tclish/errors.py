"""Exceptions used by the tclish interpreter.

``TclReturn``/``TclBreak``/``TclContinue`` implement non-local control flow
the way Tcl's own core does (result codes threaded out of nested
evaluation); Python exceptions are the natural encoding.
"""

from __future__ import annotations


class TclError(Exception):
    """A script error: unknown command, bad syntax, bad operand, ..."""


class TclReturn(Exception):
    """Raised by the ``return`` command; carries the return value."""

    def __init__(self, value: str = ""):
        super().__init__(value)
        self.value = value


class TclBreak(Exception):
    """Raised by ``break`` inside a loop body."""


class TclContinue(Exception):
    """Raised by ``continue`` inside a loop body."""
