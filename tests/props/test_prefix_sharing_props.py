"""Prefix-grouped sweeps and checkpoint-tree exploration change nothing
but the clock.

Two contracts, pinned over the real protocol rigs:

- a prefix-grouped ``Campaign.run`` of the split fuzz body is
  byte-identical -- results, canonical traces, oracle fingerprints --
  to the cold :func:`~repro.oracle.fuzz.fuzz_body` sweep it amortizes,
  across every TCP vendor profile and GMP bug variant;
- :func:`~repro.oracle.explore.explore` with nested re-checkpointing
  reaches exactly the flat exploration's outcomes while dispatching
  strictly fewer simulated events (deep branches refork a warm
  ancestor instead of replaying their prefix).
"""

import random

import pytest

from repro.analysis.export import VOLATILE_ATTRS, dump_trace
from repro.core.orchestrator import Campaign
from repro.oracle.explore import explore
from repro.oracle.fuzz import (DEFAULT_DEPTHS, GMP_VARIANTS, fuzz_body,
                               pack_for, prefixed_fuzz_body)
from repro.oracle.grammar import generate_script
from repro.tcp import VENDORS


def canon(trace) -> str:
    return dump_trace(trace, exclude_attrs=VOLATILE_ATTRS)


def _config(protocol: str, target: str, index: int, depth=None):
    script = generate_script(random.Random(index), protocol, index=index)
    config = {"protocol": protocol, "target": target,
              "script": script.source, "init_script": script.init,
              "direction": script.direction}
    if depth is not None:
        config["install_at"] = depth
    return config


def _stable(results):
    return [(r.config, r.result, canon(r.trace),
             [v.fingerprint() for v in (r.violations or [])],
             None if r.telemetry is None else
             (r.telemetry.events, r.telemetry.virtual_s,
              r.telemetry.trace_entries))
            for r in results]


def _assert_grouped_matches_cold(configs, protocol, seed):
    cold = Campaign(fuzz_body, seed=seed).run(
        configs, oracle=pack_for(protocol))
    grouped = Campaign(prefixed_fuzz_body, seed=seed).run(
        configs, oracle=pack_for(protocol))
    assert _stable(grouped) == _stable(cold)


# ----------------------------------------------------------------------
# grouped campaign == cold fuzz_body sweep
# ----------------------------------------------------------------------

@pytest.mark.parametrize("vendor", sorted(VENDORS))
def test_tcp_grouped_sweep_matches_cold(vendor):
    # depth 5.0 shares a mid-stream prefix: handshake done, segments
    # and retransmission timers in flight when each script arms
    configs = [_config("tcp", vendor, index, depth=5.0)
               for index in range(3)]
    _assert_grouped_matches_cold(configs, "tcp", seed=42)


@pytest.mark.parametrize("variant", GMP_VARIANTS + ("fixed",))
def test_gmp_grouped_sweep_matches_cold(variant):
    configs = [_config("gmp", variant, index) for index in range(3)]
    _assert_grouped_matches_cold(configs, "gmp", seed=7)


def test_mixed_target_sweep_groups_per_target():
    # a sweep across all GMP variants forms one prefix group per
    # variant (the bug flags differ, so the warm worlds differ)
    configs = [_config("gmp", variant, index)
               for variant in GMP_VARIANTS for index in range(2)]
    keys = {prefixed_fuzz_body.prefix_key(c) for c in configs}
    assert keys == {("gmp", v, DEFAULT_DEPTHS["gmp"])
                    for v in GMP_VARIANTS}
    _assert_grouped_matches_cold(configs, "gmp", seed=3)


def test_grouped_parallel_matches_cold():
    configs = [_config("gmp", variant, index)
               for variant in ("self_death", "fixed")
               for index in range(3)]
    cold = Campaign(fuzz_body, seed=7).run(configs,
                                           oracle=pack_for("gmp"))
    grouped = Campaign(prefixed_fuzz_body, seed=7).run(
        configs, workers=2, oracle=pack_for("gmp"))
    assert _stable(grouped) == _stable(cold)


# ----------------------------------------------------------------------
# nested-checkpoint exploration == flat exploration, fewer events
# ----------------------------------------------------------------------

def _outcome_set(report):
    return sorted((o.outcome_hash, tuple(o.codes), o.violation_count)
                  for o in report.outcomes)


@pytest.mark.parametrize("target", ("self_death", "fixed"))
def test_explore_nested_matches_flat_with_fewer_events(target):
    kwargs = dict(seed=0, max_schedules=24, max_perturbations=2)
    flat = explore("gmp", target, recheckpoint_every=0, **kwargs)
    nested = explore("gmp", target, recheckpoint_every=8, **kwargs)
    assert nested.schedules == flat.schedules
    assert _outcome_set(nested) == _outcome_set(flat)
    assert ([o.outcome_hash for o in nested.outcomes]
            == [o.outcome_hash for o in flat.outcomes])
    assert nested.distinct_outcomes == flat.distinct_outcomes
    # the acceptance criterion: strictly fewer dispatched events
    assert nested.simulated_events < flat.simulated_events
    assert nested.nested_captures > 0
    assert flat.nested_captures == 0 and flat.ancestor_forks == 0
