"""Unit tests for the reliable communication layer."""

import pytest

from repro.core import make_env
from repro.gmp.reliable import ReliableChannel
from repro.gmp.udp import UDPProtocol
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.xkernel.stack import NodeAnchor, ProtocolStack


class TopSink(Protocol):
    def __init__(self):
        super().__init__("sink")
        self.got = []

    def pop(self, msg):
        self.got.append(msg)


class DropGate(Protocol):
    """Between reliable and UDP: programmable loss."""

    def __init__(self):
        super().__init__("gate")
        self.drop_next = 0
        self.drop_all = False
        self.passed = 0

    def push(self, msg):
        if self.drop_all or self.drop_next > 0:
            if self.drop_next > 0:
                self.drop_next -= 1
            return
        self.passed += 1
        self.send_down(msg)


def build_pair():
    env = make_env()
    tops, gates, channels = {}, {}, {}
    for addr in (1, 2):
        node = env.network.add_node(f"h{addr}", addr)
        top = TopSink()
        channel = ReliableChannel(addr, env.scheduler, trace=env.trace)
        gate = DropGate()
        ProtocolStack(f"s{addr}").build(top, channel, gate,
                                        UDPProtocol(addr), NodeAnchor(node))
        tops[addr], gates[addr], channels[addr] = top, gate, channel
    return env, tops, gates, channels


def send(channels, src, dst, text, reliable=True):
    msg = Message(payload=text)
    msg.meta["dst"] = dst
    msg.meta["reliable"] = reliable
    channels[src].push(msg)


def test_delivery_without_loss():
    env, tops, _, channels = build_pair()
    send(channels, 1, 2, "hello")
    env.run_until(1.0)
    assert [m.payload for m in tops[2].got] == ["hello"]


def test_retransmission_recovers_loss():
    env, tops, gates, channels = build_pair()
    gates[1].drop_next = 1
    send(channels, 1, 2, "retry me")
    env.run_until(5.0)
    assert [m.payload for m in tops[2].got] == ["retry me"]


def test_retries_bounded_then_abandoned():
    env, tops, gates, channels = build_pair()
    gates[1].drop_all = True
    send(channels, 1, 2, "never")
    env.run_until(30.0)
    assert tops[2].got == []
    assert channels[1].abandoned_count == 1
    # after abandoning, no more retransmissions are attempted
    count = env.trace.count("rel.retransmit", node=1)
    assert count == channels[1].max_retries


def test_duplicates_suppressed():
    env, tops, gates, channels = build_pair()
    # drop the ACK so the sender retransmits, producing a duplicate
    gates[2].drop_next = 1
    send(channels, 1, 2, "once only")
    env.run_until(5.0)
    assert [m.payload for m in tops[2].got] == ["once only"]
    assert channels[2].duplicate_count >= 1


def test_unreliable_messages_not_retried():
    env, tops, gates, channels = build_pair()
    gates[1].drop_next = 1
    send(channels, 1, 2, "heartbeat", reliable=False)
    env.run_until(10.0)
    assert tops[2].got == []
    assert env.trace.count("rel.retransmit", node=1) == 0


def test_unreliable_messages_delivered():
    env, tops, _, channels = build_pair()
    send(channels, 1, 2, "hb", reliable=False)
    env.run_until(1.0)
    assert [m.payload for m in tops[2].got] == ["hb"]


def test_per_peer_sequence_numbers():
    env, tops, _, channels = build_pair()
    for i in range(5):
        send(channels, 1, 2, f"m{i}")
    env.run_until(2.0)
    assert [m.payload for m in tops[2].got] == [f"m{i}" for i in range(5)]


def test_bidirectional_traffic():
    env, tops, _, channels = build_pair()
    send(channels, 1, 2, "ping")
    send(channels, 2, 1, "pong")
    env.run_until(1.0)
    assert [m.payload for m in tops[2].got] == ["ping"]
    assert [m.payload for m in tops[1].got] == ["pong"]


def test_push_without_dst_raises():
    env, _, _, channels = build_pair()
    with pytest.raises(ValueError):
        channels[1].push(Message(payload="lost"))


def test_ack_messages_not_delivered_up():
    env, tops, _, channels = build_pair()
    send(channels, 1, 2, "data")
    env.run_until(2.0)
    # node 1 received the reliable-layer ACK but nothing surfaced
    assert tops[1].got == []
