"""The GMP implementation's historical bugs, as switchable flags.

The whole point of the paper's §4.2 experiments was to *find* these bugs
in a student implementation that had already been "extensively tested" by
its authors.  We ship them switchable so every experiment can demonstrate
both the faulty trace the PFI tool exposed and the behaviour after the
fix:

- ``self_death``: "when the local machine did not receive heartbeats from
  itself, it sent out a message to the other members of the group saying
  that it had died!  However, it did not update its own local state very
  well and instead of forming a singleton group ... it stayed in the old
  group but simply marked itself as down."
- ``proclaim_forward_param``: while self-"dead", forwarding a PROCLAIM
  called "a routine ... with the wrong type of parameter, which resulted
  in the packet not being forwarded at all."
- ``proclaim_reply_to_sender``: "instead of the leader responding to the
  original sender, it responded to the machine which forwarded the
  message.  This caused a proclaim loop."
- ``inverted_timer_unregister``: the unregister-timeouts logic error of
  Experiment 4 (see :mod:`repro.gmp.timers`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BugFlags:
    """Which historical bugs are compiled into a daemon."""

    self_death: bool = False
    proclaim_forward_param: bool = False
    proclaim_reply_to_sender: bool = False
    inverted_timer_unregister: bool = False

    def any(self) -> bool:
        return (self.self_death or self.proclaim_forward_param
                or self.proclaim_reply_to_sender
                or self.inverted_timer_unregister)

    def fixed(self) -> "BugFlags":
        """The post-PFI-testing implementation: everything repaired."""
        return BugFlags()


#: The implementation as the three graduate students delivered it.
AS_DELIVERED = BugFlags(
    self_death=True,
    proclaim_forward_param=True,
    proclaim_reply_to_sender=True,
    inverted_timer_unregister=True,
)

#: The implementation after the PFI experiments and fixes.
FIXED = BugFlags()
