"""The metrics registry: labelled counters, gauges, and histograms.

One :class:`MetricsRegistry` per run (or per layer -- registries merge).
Metrics are identified by a name plus a frozen label set, so
``registry.counter("pfi_dropped", node="machine1")`` and the same name on
``machine2`` are distinct series, exactly like a Prometheus exposition.

Design constraints, in order:

- **hot-path cost**: ``counter(...)`` is get-or-create and should be
  called once at setup; the returned handle's ``inc()`` is a bare
  attribute increment, comparable to the ``stats["x"] += 1`` dict
  updates it replaces;
- **mergeability**: campaign workers run in separate processes and ship
  their registries back pickled; :meth:`MetricsRegistry.merge` combines
  them (counters and histograms add, gauges last-write-wins);
- **snapshots**: :meth:`MetricsRegistry.snapshot` is a plain dict keyed
  ``name{label=value,...}`` suitable for JSON, diffing, or assertions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _label_suffix(labels: Tuple[Tuple[str, Any], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def _merge(self, other: "Counter") -> None:
        self.value += other.value

    def _snapshot(self) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}{_label_suffix(self.labels)}={self.value})"


class Gauge:
    """A point-in-time value (pending events, cache size, clock)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def _merge(self, other: "Gauge") -> None:
        # gauges are snapshots, not accumulators: the merged-in (usually
        # more recent, worker-side) observation wins
        self.value = other.value

    def _snapshot(self) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name}{_label_suffix(self.labels)}={self.value})"


class Histogram:
    """A streaming summary: count, total, min, max (no bucket storage).

    Observations are floats (durations, sizes).  The summary form keeps
    merging across processes trivial and the per-observation cost at a
    few comparisons.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...] = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    def _snapshot(self) -> Any:
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "min": self.min, "max": self.max}

    def __repr__(self) -> str:
        return (f"Histogram({self.name}{_label_suffix(self.labels)} "
                f"count={self.count} mean={self.mean:.6g})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by (name, labels)."""

    def __init__(self):
        self._metrics: Dict[LabelKey, Any] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"cannot re-register as {cls.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for (name, labels), created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{"name{label=v,...}": value}`` dict of every metric.

        Counter/gauge values come through directly; histograms snapshot
        to a ``{count,total,mean,min,max}`` dict.  Keys sort stably.
        """
        out: Dict[str, Any] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            out[f"{name}{_label_suffix(labels)}"] = metric._snapshot()
        return out

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry (e.g. a worker's) into this one."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                clone = type(metric)(metric.name, metric.labels)
                clone._merge(metric)
                self._metrics[key] = clone
            elif type(mine) is not type(metric):
                raise TypeError(
                    f"cannot merge {metric.kind} {metric.name!r} into "
                    f"{mine.kind} of the same name")
            else:
                mine._merge(metric)
        return self

    def render(self, *, prefix: str = "") -> str:
        """Human-readable table, optionally restricted by name prefix."""
        rows: List[Tuple[str, str]] = []
        for key, value in self.snapshot().items():
            if not key.startswith(prefix):
                continue
            if isinstance(value, dict):  # histogram summary
                text = (f"count={value['count']} mean={value['mean']:.6g} "
                        f"min={value['min']} max={value['max']}")
            else:
                text = str(value)
            rows.append((key, text))
        if not rows:
            return "(no metrics)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {text}" for name, text in rows)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
