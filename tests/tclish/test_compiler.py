"""Tests for the compile-once execution engine.

Two halves: unit tests for the word/segment analysis and the shared
compile cache, and an equivalence corpus asserting that the compiled
engine produces exactly what the parse-per-eval path produces -- same
results, same variable state, same output, same errors.
"""

import pytest

from repro.core.tclish import Interp, TclError, clear_cache, compile_script
from repro.core.tclish import compiler
from repro.core.tclish.compiler import (
    LITERAL,
    SEG_CMD,
    SEG_TEXT,
    SEG_VAR,
    SEGMENTS,
    VARREF,
    analyze_word,
    compile_substitution,
)


class TestWordAnalysis:
    def test_braced_word_is_literal_verbatim(self):
        word = analyze_word("{$not substituted}")
        assert word.kind == LITERAL
        assert word.text == "$not substituted"

    def test_plain_bare_word_is_literal(self):
        word = analyze_word("hello")
        assert word.kind == LITERAL
        assert word.text == "hello"

    def test_quoted_word_without_specials_is_literal(self):
        word = analyze_word('"hello world"')
        assert word.kind == LITERAL
        assert word.text == "hello world"

    def test_simple_variable_is_varref(self):
        assert analyze_word("$count").kind == VARREF
        assert analyze_word("$count").text == "count"

    def test_braced_variable_is_varref(self):
        word = analyze_word("${a b}")
        assert word.kind == VARREF
        assert word.text == "a b"

    def test_mixed_word_becomes_segments(self):
        word = analyze_word("${it}px")
        assert word.kind == SEGMENTS
        assert word.segments == ((SEG_VAR, "it"), (SEG_TEXT, "px"))

    def test_backslash_only_word_collapses_to_literal(self):
        word = analyze_word(r"a\tb")
        assert word.kind == LITERAL
        assert word.text == "a\tb"

    def test_command_substitution_segment(self):
        segments = compile_substitution("x[cmd a]y")
        assert segments == ((SEG_TEXT, "x"), (SEG_CMD, "cmd a"),
                            (SEG_TEXT, "y"))

    def test_lone_dollar_is_text(self):
        assert compile_substitution("a$ b") == ((SEG_TEXT, "a$ b"),)

    def test_unmatched_bracket_raises(self):
        with pytest.raises(TclError, match="unmatched open bracket"):
            compile_substitution("a[oops")


class TestCompileScript:
    def test_command_and_word_counts(self):
        script = compile_script("set a 1\nif {$a} {puts yes}")
        assert len(script.commands) == 2
        assert [w.kind for w in script.commands[0].words] == [
            LITERAL, LITERAL, LITERAL]

    def test_comments_and_blank_lines_dropped(self):
        script = compile_script("# comment\n\nset a 1\n")
        assert len(script.commands) == 1


class TestCompileCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_eval_counts_hits_and_misses(self):
        interp = Interp()
        base_evals = interp.eval_count
        interp.eval("set a 1")
        interp.eval("set a 1")
        interp.eval("set a 1")
        stats = interp.stats()
        assert stats["eval_count"] == base_evals + 3
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 2

    def test_cache_shared_across_interps(self):
        one = Interp()
        one.eval("set shared 1")
        two = Interp()
        two.eval("set shared 1")
        assert two.cache_hits == 1
        assert two.cache_misses == 0

    def test_control_flow_bodies_hit_the_cache(self):
        interp = Interp()
        interp.eval("set n 0")
        interp.eval("while {$n < 3} {incr n}")
        # the loop body was evaluated three times from one compilation
        assert interp.cache_hits >= 2

    def test_lru_bound_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(compiler, "CACHE_MAX", 4)
        interp = Interp()
        for i in range(8):
            interp.eval(f"set v{i} {i}")
        assert compiler.cache_size() <= 4

    def test_filter_warm_compile(self):
        from repro.core import TclishFilter
        script = TclishFilter("incr n", init_script="set n 0")
        assert script.interp.cache_misses >= 1
        assert compiler.cache_size() >= 1


#: scripts covering the tclish surface; each must behave identically under
#: the compiled and parse-per-eval engines
EQUIVALENCE_CORPUS = [
    "set a 1",
    "set a 5; incr a; incr a 10",
    "set a hello; append a _world; set a",
    "set x 4; expr {$x * 3 + 1}",
    "expr {3.5 / 2}",
    'expr {"abc" eq "abc" && 2 < 3}',
    "set n 0; while {$n < 5} {incr n}; set n",
    "set total 0; for {set i 0} {$i < 10} {incr i} "
    "{set total [expr {$total + $i}]}; set total",
    "set out {}; foreach x {a b c} {append out $x-}; set out",
    "proc double {x} {return [expr {$x * 2}]}; double 21",
    "proc counter {} {global n; incr n}; set n 0; counter; counter; set n",
    "catch {error boom} msg; set msg",
    "catch {set nope}",
    'set l [list a b "c d"]; lindex $l 2',
    "llength {a b c d}",
    "set l {}; lappend l x; lappend l y z; set l",
    "lrange {a b c d e} 1 3",
    "lsort -integer {3 1 2}",
    "lsearch {a b c} c",
    'join [split "a,b,c" ,] -',
    "string toupper abc",
    "string range hello 1 3",
    'format "%d-%s" 7 x',
    "switch -glob DATA {D* {set r data} default {set r other}}; set r",
    'set name world; puts "hello $name"; puts -nonewline done',
    "eval set dyn 9; set dyn",
    "set a 3; set b [expr {$a + [llength {x y}]}]",
    "set it 5; set x ${it}px; set x",
    r'set s "tab\tend"; string length $s',
    "while {1} {break}",
    "set i 0; while {$i < 6} {incr i; if {$i == 2} {continue}}; set i",
    "if {0} {set r no} elseif {1} {set r yes} else {set r other}; set r",
    "info exists missing",
    "set a 1; info exists a",
    "set q [expr {1 ? 10 : 20}]",
]

#: scripts that must fail identically on both engines
ERROR_CORPUS = [
    "no_such_command foo",
    "set",
    "expr {1 +}",
    "unset nosuch",
    "while {1} {error stop}",
    "foreach x {a b} {error inner}",
    "incr v one two three",
]


def _run_both(source):
    compiled = Interp(compiled=True)
    fresh = Interp(compiled=False)
    return compiled, compiled.eval(source), fresh, fresh.eval(source)


class TestCompiledEquivalence:
    @pytest.mark.parametrize("source", EQUIVALENCE_CORPUS)
    def test_results_state_and_output_match(self, source):
        compiled, compiled_result, fresh, fresh_result = _run_both(source)
        assert compiled_result == fresh_result
        assert compiled.globals == fresh.globals
        assert compiled.output_lines == fresh.output_lines

    @pytest.mark.parametrize("source", ERROR_CORPUS)
    def test_errors_match(self, source):
        with pytest.raises(TclError) as compiled_err:
            Interp(compiled=True).eval(source)
        with pytest.raises(TclError) as fresh_err:
            Interp(compiled=False).eval(source)
        assert str(compiled_err.value) == str(fresh_err.value)

    def test_persistent_state_across_evals_matches(self):
        compiled = Interp(compiled=True)
        fresh = Interp(compiled=False)
        for interp in (compiled, fresh):
            interp.eval("set seen 0; set dropped 0")
            for kind in ["ACK", "DATA", "ACK", "ACK", "DATA"]:
                interp.set_var("kind", kind)
                interp.eval(
                    'incr seen\n'
                    'if {$kind eq "ACK"} {incr dropped}\n'
                    'puts "$seen:$dropped"')
        assert compiled.globals == fresh.globals
        assert compiled.output_lines == fresh.output_lines
