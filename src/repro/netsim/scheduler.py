"""Virtual-time discrete-event scheduler.

The scheduler is the single source of time in the simulator.  All protocol
timers, link latencies, and fault-injection delays are events on one heap,
which makes every experiment deterministic: two runs with the same inputs
produce identical event orderings.

Events scheduled for the same instant fire in the order they were scheduled
(a monotonically increasing sequence number breaks ties), which mirrors the
FIFO behaviour of a real event loop and keeps traces stable.

Hot-path layout: the heap stores plain ``(time, seq, callback, args,
event)`` tuples rather than :class:`Event` objects, so every sift
comparison during push/pop is a C-level tuple comparison (the unique
``seq`` guarantees the comparison never reaches the non-orderable tail).
:class:`Event` survives purely as the cancellation handle returned to
callers; it never participates in heap ordering.  The ``run*`` loops pop
and dispatch inline instead of going through :meth:`step`/:meth:`peek_time`
per event, which removes one method call and one redundant heap traversal
per dispatched event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify

#: lazy-cancel tombstones tolerated on the heap before :meth:`Scheduler
#: .compact` runs automatically (and only when tombstones also outnumber
#: live entries -- a large busy heap is not worth rebuilding)
COMPACT_THRESHOLD = 256


class SchedulerError(Exception):
    """Raised on scheduler misuse (negative delays, running an empty loop)."""


class SchedulerClock:
    """A ``() -> now`` callable reading a scheduler's virtual clock.

    Equivalent to ``lambda: scheduler.now`` but an instance of a class,
    so anything holding one (trace recorders, congestion controllers)
    deep-copies cleanly: ``copy.deepcopy`` treats functions as atomic
    values, and a lambda closing over a scheduler would keep pointing at
    the *original* scheduler inside a checkpointed fork.
    """

    __slots__ = ("scheduler",)

    def __init__(self, scheduler: "Scheduler"):
        self.scheduler = scheduler

    def __call__(self) -> float:
        return self.scheduler._now

    def __repr__(self) -> str:
        return f"SchedulerClock({self.scheduler!r})"


class Event:
    """A scheduled callback's cancellation handle.

    Returned by :meth:`Scheduler.schedule` so callers can cancel it later.
    Cancellation is lazy: the heap entry stays put and is skipped when it
    surfaces, which keeps cancel O(1).  Cancelling an event that has
    already fired (or was already cancelled) is a harmless no-op, so
    callers may keep stale handles around without corrupting the
    scheduler's pending count.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "dispatched",
                 "_scheduler")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple, scheduler: "Optional[Scheduler]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.dispatched = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once,
        and safe to call after the event has already fired."""
        if self.cancelled or self.dispatched:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            status = "cancelled"
        elif self.dispatched:
            status = "fired"
        else:
            status = "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {status})"


#: heap entry shape: (time, seq, callback, args, handle)
_HeapEntry = Tuple[float, int, Callable[..., Any], tuple, Event]


class Scheduler:
    """Priority-queue event loop over a virtual clock.

    The clock only advances when events are dispatched; there is no relation
    to wall-clock time.  A ``max_events`` safety valve guards against
    accidental infinite event cascades (e.g. two protocols ping-ponging
    messages with zero latency).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[_HeapEntry] = []
        self._next_seq = 0
        self._dispatched = 0
        self._scheduled = 0
        self._cancelled = 0
        self._tombstones = 0
        self.compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still on the heap.

        Derived from three live counters (scheduled/cancelled/dispatched)
        rather than a heap scan, so polling it inside an event loop stays
        O(1) and the dispatch loop never has to maintain a fourth counter.
        """
        return self._scheduled - self._cancelled - self._dispatched

    @property
    def dispatched_count(self) -> int:
        """Total number of events dispatched since construction."""
        return self._dispatched

    def fill_metrics(self, registry, **labels: Any) -> None:
        """Absorb the scheduler's counters into a metrics registry.

        This supersedes reading the bare ``dispatched_count`` /
        ``pending_count`` attributes when building a run snapshot: the
        values land as labelled gauges next to every other subsystem's
        series (see :mod:`repro.obs.metrics`).
        """
        registry.gauge("scheduler_now_s", **labels).set(self._now)
        registry.gauge("scheduler_dispatched", **labels).set(
            self._dispatched)
        registry.gauge("scheduler_pending", **labels).set(self.pending_count)
        registry.gauge("scheduler_compactions", **labels).set(
            self.compactions)
        registry.gauge("scheduler_tombstones", **labels).set(
            self._tombstones)

    def _note_cancel(self) -> None:
        """Bookkeeping for one lazy cancellation, compacting when the
        tombstones pile up.

        Long fuzz runs cancel events far faster than the heap surfaces
        them (every restarted timer leaves one behind), so without
        compaction the heap grows without bound and every push/pop pays
        for dead entries.  Compaction triggers once tombstones exceed
        :data:`COMPACT_THRESHOLD` *and* outnumber live entries, keeping
        the rebuild amortized O(1) per cancellation.
        """
        self._cancelled += 1
        self._tombstones += 1
        if (self._tombstones > COMPACT_THRESHOLD
                and self._tombstones * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries from the heap.  Returns how many went.

        The heap list is filtered *in place* (slice assignment, then
        heapify) so ``run*`` loops holding a local reference to the list
        keep seeing the live heap even when a callback's cancellation
        triggers compaction mid-run.
        """
        if not self._tombstones:
            return 0
        removed = self._tombstones
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[4].cancelled]
        _heapify(heap)
        self._tombstones = 0
        self.compactions += 1
        return removed

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, scheduler=self)
        _heappush(self._heap, (time, seq, callback, args, event))
        self._scheduled += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, scheduler=self)
        _heappush(self._heap, (time, seq, callback, args, event))
        self._scheduled += 1
        return event

    def _pop_next(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            event = entry[4]
            if not event.cancelled:
                return event
            self._tombstones -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0][4].cancelled:
            _heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None

    def peek_entry(self) -> Optional[Event]:
        """The next pending event's handle, without dispatching it.

        Cancelled entries surfacing at the top are discarded on the way,
        like :meth:`peek_time`.  The delivery-order explorer uses this to
        classify (and possibly cancel or reschedule) the event that would
        fire next before deciding to :meth:`step`.
        """
        heap = self._heap
        while heap and heap[0][4].cancelled:
            _heappop(heap)
            self._tombstones -= 1
        return heap[0][4] if heap else None

    def pending_events(self) -> List[Event]:
        """Live (uncancelled) event handles in firing order.

        A diagnostic/exploration view -- O(n log n) -- not a hot path.
        """
        live = [entry for entry in self._heap if not entry[4].cancelled]
        return [entry[4] for entry in sorted(live)]

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if none remained."""
        event = self._pop_next()
        if event is None:
            return False
        event.dispatched = True
        self._now = event.time
        self._dispatched += 1
        event.callback(*event.args)
        return True

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the heap drains.  Returns the number of events fired."""
        heap = self._heap
        pop = _heappop
        fired = 0
        while heap:
            time, _seq, callback, args, event = pop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.dispatched = True
            self._now = time
            self._dispatched += 1
            callback(*args)
            fired += 1
            if fired >= max_events:
                raise SchedulerError(
                    f"exceeded max_events={max_events}; probable event cascade"
                )
        return fired

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Run events up to and including ``deadline``, then set now=deadline.

        Events scheduled exactly at the deadline do fire.  The clock is left
        at the deadline even if the heap drained earlier, so subsequent
        relative scheduling behaves as if time genuinely passed.
        """
        if deadline < self._now:
            raise SchedulerError(
                f"deadline {deadline} is before current time {self._now}"
            )
        heap = self._heap
        pop = _heappop
        fired = 0
        while heap and heap[0][0] <= deadline:
            time, _seq, callback, args, event = pop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.dispatched = True
            self._now = time
            self._dispatched += 1
            callback(*args)
            fired += 1
            if fired >= max_events:
                raise SchedulerError(
                    f"exceeded max_events={max_events}; probable event cascade"
                )
        self._now = deadline
        return fired

    def run_until_quiet(self, max_time: float = 1e9,
                        max_events: int = 1_000_000) -> int:
        """Run until no events at or before ``max_time`` remain.

        Unlike :meth:`run_until`, the clock is left at the last dispatched
        event rather than advanced to ``max_time``, matching "run until the
        experiment quiesces" semantics.  Returns the number of events fired.
        """
        heap = self._heap
        pop = _heappop
        fired = 0
        while heap and heap[0][0] <= max_time:
            time, _seq, callback, args, event = pop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.dispatched = True
            self._now = time
            self._dispatched += 1
            callback(*args)
            fired += 1
            if fired >= max_events:
                raise SchedulerError(
                    f"exceeded max_events={max_events}; probable event cascade"
                )
        return fired

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Convenience wrapper: run until ``now + duration``."""
        return self.run_until(self._now + duration, max_events=max_events)

    def __repr__(self) -> str:
        return f"Scheduler(now={self._now:.6f}, pending={self.pending_count})"
