"""Shard partitioning and the work-stealing lease board.

A sweep's remaining configurations are partitioned into *shards* --
contiguous-enough slices sized so every worker sees several leases per
sweep (load balancing) while each lease is big enough to amortize the
per-shard journal and prefix capture.  Prefix groups
(:class:`~repro.core.orchestrator.PrefixedBody` keys) are **never split
across shards**: one lease owns the whole group, so its warm prefix is
captured exactly once per attempt, the same contract PR 9's in-process
chunker keeps per worker chunk.

The :class:`LeaseBoard` is the coordinator's single source of truth for
who is doing what.  It is deliberately pure -- callers inject ``now``
(any monotonic clock) and serialize access -- which is what makes the
lease/steal/expiry contract unit-testable without sockets, threads or
wall time:

- a shard is leased to at most one worker at a time;
- a lease not heartbeat within ``ttl`` seconds expires; the shard
  returns to the pending queue and the next requester steals it
  (*exactly one* next requester -- a grant transitions the shard to
  leased atomically);
- a zombie holder (expired or disconnected) gets ``False`` from
  :meth:`heartbeat`; its late :meth:`complete` is accepted only while
  the shard is not already done -- results are content-addressed and
  deterministic, so double execution is wasted work, never wrong work;
- completion is monotonic: a done shard never re-enters the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.orchestrator import _prefix_groups

#: aim for this many shards per worker, like the in-process chunker's
#: :data:`~repro.core.orchestrator._CHUNKS_PER_WORKER` -- enough slack
#: that losing a worker strands at most ``1/(workers*4)`` of the sweep
#: behind one lease
SHARDS_PER_WORKER = 4

PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class Shard:
    """One leasable slice of the sweep (global config indices)."""

    shard_id: int
    indices: List[int]
    state: str = PENDING
    worker: Optional[str] = None
    deadline: float = 0.0
    #: how many times this shard has been leased (1 = never stolen)
    attempts: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {"shard": self.shard_id, "indices": list(self.indices),
                "state": self.state, "worker": self.worker,
                "attempts": self.attempts}


def partition_shards(todo: List[int], prefix_keys: List[Optional[Any]],
                     *, workers: int,
                     shard_size: Optional[int] = None) -> List[Shard]:
    """Pack the remaining configurations into shards, groups whole.

    ``prefix_keys`` is indexed by *global* config index (like the
    orchestrator's).  Groups are packed first-appearance-ordered into
    shards of about ``shard_size`` configs (derived from ``workers``
    when not given); a group larger than the target still lands in one
    shard -- the never-split contract outranks balance, and stealing
    rebalances at lease granularity anyway.
    """
    if not todo:
        return []
    if shard_size is None:
        target = min(len(todo), max(1, workers) * SHARDS_PER_WORKER)
        shard_size = -(-len(todo) // target)  # ceil division
    shard_size = max(1, shard_size)
    shards: List[Shard] = []
    current: List[int] = []
    for _key, indices in _prefix_groups(todo, prefix_keys):
        if current and len(current) + len(indices) > shard_size:
            shards.append(Shard(shard_id=len(shards), indices=current))
            current = []
        current.extend(indices)
    if current:
        shards.append(Shard(shard_id=len(shards), indices=current))
    return shards


@dataclass
class LeaseBoard:
    """Pending/leased/done bookkeeping with injected time."""

    shards: List[Shard]
    ttl: float = 15.0
    #: leases granted beyond a shard's first (steals after expiry or
    #: worker loss)
    stolen: int = 0
    #: leases reclaimed by ttl expiry
    expired: int = 0
    #: leases reclaimed because the holder disconnected
    released: int = 0
    _by_id: Dict[int, Shard] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._by_id = {shard.shard_id: shard for shard in self.shards}
        if len(self._by_id) != len(self.shards):
            raise ValueError("duplicate shard ids")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def pending(self) -> List[Shard]:
        return [s for s in self.shards if s.state == PENDING]

    def leased(self) -> List[Shard]:
        return [s for s in self.shards if s.state == LEASED]

    def done(self) -> bool:
        return all(s.state == DONE for s in self.shards)

    def held_by(self, worker: str) -> List[Shard]:
        return [s for s in self.shards
                if s.state == LEASED and s.worker == worker]

    # ------------------------------------------------------------------
    # transitions (callers serialize; ``now`` is any monotonic clock)
    # ------------------------------------------------------------------

    def lease(self, worker: str, now: float) -> Optional[Shard]:
        """Grant the lowest-id pending shard to ``worker``, or None."""
        for shard in self.shards:
            if shard.state == PENDING:
                shard.state = LEASED
                shard.worker = worker
                shard.deadline = now + self.ttl
                shard.attempts += 1
                if shard.attempts > 1:
                    self.stolen += 1
                return shard
        return None

    def heartbeat(self, worker: str, shard_id: int, now: float) -> bool:
        """Renew a held lease; False tells a zombie to stand down."""
        shard = self._by_id.get(shard_id)
        if (shard is None or shard.state != LEASED
                or shard.worker != worker):
            return False
        shard.deadline = now + self.ttl
        return True

    def complete(self, worker: str, shard_id: int) -> bool:
        """Mark a shard done; True only on the transition to done.

        Accepts completion from a zombie holder too (the shard was
        stolen but the original worker finished anyway): its rows are
        content-addressed, so the work stands.  A shard already done
        stays done and the late completion reports ``False``.
        """
        shard = self._by_id.get(shard_id)
        if shard is None or shard.state == DONE:
            return False
        shard.state = DONE
        shard.worker = worker
        return True

    def expire(self, now: float) -> List[Shard]:
        """Return expired leases to the pending queue."""
        reclaimed = []
        for shard in self.shards:
            if shard.state == LEASED and now > shard.deadline:
                shard.state = PENDING
                shard.worker = None
                self.expired += 1
                reclaimed.append(shard)
        return reclaimed

    def release_worker(self, worker: str) -> List[Shard]:
        """Reclaim every lease a (disconnected) worker holds."""
        reclaimed = []
        for shard in self.shards:
            if shard.state == LEASED and shard.worker == worker:
                shard.state = PENDING
                shard.worker = None
                self.released += 1
                reclaimed.append(shard)
        return reclaimed

    def as_dict(self) -> Dict[str, Any]:
        return {"ttl": self.ttl, "stolen": self.stolen,
                "expired": self.expired, "released": self.released,
                "shards": [s.as_dict() for s in self.shards]}
