"""Property-based tests: reassembly always reconstructs the byte stream.

The central receiver invariant of TCP: whatever order segments arrive in,
with whatever duplication or overlap, the delivered stream equals the sent
stream, each byte exactly once, in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.reassembly import ReassemblyQueue
from repro.tcp.segment import SEQ_MOD, seq_add


@st.composite
def segmented_stream(draw):
    """A byte stream cut into segments, then shuffled with duplicates."""
    data = draw(st.binary(min_size=1, max_size=400))
    base = draw(st.integers(min_value=0, max_value=SEQ_MOD - 1))
    cuts = sorted(draw(st.sets(
        st.integers(min_value=1, max_value=max(1, len(data) - 1)),
        max_size=10)))
    bounds = [0] + [c for c in cuts if c < len(data)] + [len(data)]
    segments = []
    for lo, hi in zip(bounds, bounds[1:]):
        if lo < hi:
            segments.append((seq_add(base, lo), data[lo:hi]))
    order = draw(st.permutations(segments))
    duplicated = draw(st.lists(st.sampled_from(segments), max_size=5)) \
        if segments else []
    return data, base, list(order) + duplicated


@given(segmented_stream())
@settings(max_examples=200)
def test_any_arrival_order_reconstructs_stream(case):
    data, base, arrivals = case
    queue = ReassemblyQueue()
    delivered = bytearray()
    cursor = base
    for seq, payload in arrivals:
        if seq == cursor:
            # in-order arrival: accept directly, then drain the queue
            delivered.extend(payload)
            cursor = seq_add(seq, len(payload))
            extra, cursor = queue.extract(cursor)
            delivered.extend(extra)
        else:
            queue.add(seq, payload)
            extra, cursor = queue.extract(cursor)
            delivered.extend(extra)
    assert bytes(delivered) == data
    assert cursor == seq_add(base, len(data))


@given(st.binary(min_size=2, max_size=200),
       st.integers(min_value=0, max_value=SEQ_MOD - 1))
@settings(max_examples=100)
def test_reversed_halves_reconstruct(data, base):
    mid = len(data) // 2
    queue = ReassemblyQueue()
    queue.add(seq_add(base, mid), data[mid:])
    queue.add(base, data[:mid])
    out, cursor = queue.extract(base)
    assert out == data
    assert cursor == seq_add(base, len(data))


@given(st.binary(min_size=1, max_size=100),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=100)
def test_duplicates_never_double_deliver(data, copies):
    queue = ReassemblyQueue()
    for _ in range(min(copies, 20)):
        queue.add(1000, data)
    out, cursor = queue.extract(1000)
    assert out == data
    out2, cursor2 = queue.extract(cursor)
    assert out2 == b""
    assert cursor2 == cursor
