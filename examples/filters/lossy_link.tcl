# Probabilistic omission: drop 20% of DATA segments, leave control
# traffic alone.  `chance` draws from the filter's seeded RNG, so a
# campaign re-run reproduces the identical loss pattern.
if {[msg_type cur_msg] eq "DATA"} {
    if {[chance 0.2]} {
        xDrop cur_msg
    }
}
