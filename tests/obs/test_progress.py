"""The shared progress renderer: one line shape for every engine."""

from repro.obs.progress import ProgressRenderer, format_eta, rate_of


class TestRateOf:
    def test_normal_rate(self):
        assert rate_of(50, 2.0) == 25.0

    def test_zero_elapsed_guards_division(self):
        assert rate_of(5, 0.0) == 0.0

    def test_negative_elapsed_guards_division(self):
        assert rate_of(5, -0.001) == 0.0


class TestFormatEta:
    def test_seconds(self):
        assert format_eta(42.4) == "42s"

    def test_minutes(self):
        assert format_eta(90.0) == "1.5m"

    def test_hours(self):
        assert format_eta(5400.0) == "1.5h"


class TestProgressRenderer:
    def _renderer(self, **kwargs):
        ticks = iter([0.0, 2.0, 4.0, 6.0, 8.0])
        return ProgressRenderer("fuzz gmp", clock=lambda: next(ticks),
                                **kwargs)

    def test_line_shape_with_total(self):
        renderer = self._renderer(total=64, unit="trials")
        line = renderer.line(12, coverage=58, findings=1)
        assert line == ("[fuzz gmp] 12/64 trials, 6.0 trials/s, eta 9s, "
                        "coverage 58, findings 1")

    def test_line_without_total_omits_eta(self):
        renderer = self._renderer(unit="schedules")
        line = renderer.line(7)
        assert line == "[fuzz gmp] 7 schedules, 3.5 schedules/s"

    def test_none_stats_skipped(self):
        renderer = self._renderer(total=10)
        line = renderer.line(2, findings=0, checkpoint_hit_rate=None)
        assert "checkpoint" not in line
        assert "findings 0" in line

    def test_stat_keys_render_with_spaces_and_float_precision(self):
        renderer = self._renderer(total=10)
        line = renderer.line(2, checkpoint_hit_rate="83%", speedup=2.357)
        assert "checkpoint hit rate 83%" in line
        assert "speedup 2.4" in line

    def test_done_equals_total_omits_eta(self):
        renderer = self._renderer(total=10)
        assert "eta" not in renderer.line(10)

    def test_zero_elapsed_renders_zero_rate(self):
        renderer = ProgressRenderer("x", total=4, clock=lambda: 1.0)
        assert "0.0 trials/s" in renderer.line(2)
        assert "eta" not in renderer.line(2)

    def test_explicit_elapsed_overrides_clock(self):
        renderer = self._renderer(total=100)
        assert "5.0 trials/s" in renderer.line(50, elapsed=10.0)

    def test_update_pushes_to_sink(self):
        seen = []
        renderer = ProgressRenderer("campaign", total=3, unit="configs",
                                    sink=seen.append)
        text = renderer.update(1, findings=0)
        assert seen == [text]
        assert text.startswith("[campaign] 1/3 configs")

    def test_no_sink_still_formats(self):
        renderer = ProgressRenderer("campaign", total=3)
        assert renderer.update(1).startswith("[campaign] 1/3")
