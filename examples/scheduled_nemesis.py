#!/usr/bin/env python3
"""A scripted multi-phase nemesis run, end to end.

This example integrates the orchestration pieces around the PFI core:

1. a **declarative fault schedule** (the timeline of injected faults,
   printed as a runbook before the run);
2. the **PFI layer** executing the faults;
3. a **message-sequence ladder** of the interesting window, rendered the
   way the paper draws its exchanges;
4. a **JSON-lines trace export** for offline analysis.

Run it::

    python examples/scheduled_nemesis.py
"""

import io

from repro.analysis.export import dump_trace
from repro.analysis.timeline import gmp_sequence
from repro.core.faults import drop_by_type
from repro.core.schedule import FaultSchedule
from repro.experiments.gmp_common import build_gmp_cluster


def main():
    cluster = build_gmp_cluster([1, 2, 3, 4, 5])
    network = cluster.env.network
    pfis = cluster.pfis

    schedule = (
        FaultSchedule(cluster.scheduler, trace=cluster.trace)
        .at(20.0, "partition {1,2} | {3,4,5}",
            lambda: network.partition([1, 2], [3, 4, 5]))
        .at(50.0, "heal the partition", network.heal)
        .at(70.0, "node 5 starts dropping COMMITs",
            lambda: pfis[5].set_receive_filter(drop_by_type("COMMIT")))
        .at(100.0, "node 5 heals",
            lambda: pfis[5].clear_filters())
        .every(10.0, "note the views",
               lambda: cluster.trace.record(
                   "nemesis.views", t=cluster.scheduler.now,
                   views=str(cluster.views())),
               start=15.0, until=130.0)
    )

    print("nemesis runbook:")
    for line in schedule.runbook().splitlines():
        print(f"  {line}")

    cluster.start()
    schedule.arm()
    cluster.run_until(140.0)

    print("\nviews through the run:")
    for entry in cluster.trace.entries("nemesis.views"):
        print(f"  t={entry.time:6.1f}  {entry['views']}")

    print("\nfinal state:")
    for address, daemon in sorted(cluster.daemons.items()):
        print(f"  gmd{address}: {daemon.status} "
              f"view={list(daemon.view.members)}")
    assert cluster.all_in_one_group(), "the group should have recovered"

    print("\nthe partition moment, as a message ladder "
          "(membership traffic only):")
    ladder = gmp_sequence(cluster.trace, [1, 2, 3],
                          kinds={"MEMBERSHIP_CHANGE", "ACK", "COMMIT"},
                          start=20.0, end=30.0, lane_width=24)
    for line in ladder.render(max_events=14).splitlines():
        print(f"  {line}")

    buffer = io.StringIO()
    dump_trace(cluster.trace, buffer)
    lines = buffer.getvalue().count("\n")
    print(f"\nexported the full trace as {lines} JSON lines "
          f"(analysis.export.dump_trace)")


if __name__ == "__main__":
    main()
