"""Filter scripts: the programmable half of the PFI layer.

A filter script runs once per intercepted message.  Two backends implement
the same contract:

- :class:`PythonFilter` wraps a Python callable ``fn(ctx)`` -- the
  ergonomic modern form;
- :class:`TclishFilter` evaluates tclish source in a persistent
  :class:`~repro.core.tclish.Interp`, faithfully reproducing the paper's
  Tcl scripts ("each time a message passes into the PFI layer, the
  appropriate (send or receive) script is interpreted in the appropriate
  interpreter").

Both persist state across invocations: PythonFilter via ``ctx.state``
(one dict per filter), TclishFilter via the interpreter's variables.

The tclish bridge registers the paper's utility commands:

=====================  ====================================================
``msg_type cur_msg``    type name of the current message
``msg_log cur_msg``     log the message with a timestamp
``msg_field f``         read header field ``f``
``msg_set_field f v``   modify header field ``f``
``xDrop cur_msg``       drop the message
``xDelay sec``          delay the message
``xDuplicate ?n?``      duplicate the message
``xHold ?tag?``         park the message for reordering
``xRelease ?tag?``      re-emit parked messages
``inject type ?f v..?`` inject a generated message
``now``                 virtual time
``peer_set k v``        set a variable in the other interpreter
``peer_get k ?def?``    read a variable from the other interpreter
``sync_set k ?v?``      set a cross-node flag
``sync_get k ?def?``    read a cross-node flag
``dst_normal m v``      normal draw (paper naming)
``dst_uniform a b``     uniform draw
``dst_exponential r``   exponential draw
``chance p``            1 with probability p else 0
=====================  ====================================================
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.context import ScriptContext
from repro.core.tclish import Interp, TclError


class FilterScript:
    """Base class: something that can process one intercepted message."""

    def run(self, ctx: ScriptContext) -> None:
        raise NotImplementedError


class PythonFilter(FilterScript):
    """A filter implemented as a Python callable ``fn(ctx)``."""

    def __init__(self, fn: Callable[[ScriptContext], None], name: str = ""):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "python_filter")

    def run(self, ctx: ScriptContext) -> None:
        self._fn(ctx)

    def __repr__(self) -> str:
        return f"PythonFilter({self.name})"


class TclishFilter(FilterScript):
    """A filter whose body is tclish source, evaluated per message.

    The interpreter is created once and reused, so ``set count 0`` in
    ``init_script`` followed by ``incr count`` in the body counts messages
    across invocations exactly like the paper's Tcl interpreters.

    The body is compiled into the shared tclish compile cache at
    construction, so each ``run`` executes the cached command list instead
    of re-lexing the source per message.  ``compiled=False`` restores the
    parse-per-message behaviour (equivalence tests, benchmarks).
    """

    def __init__(self, source: str, init_script: str = "", name: str = "tclish",
                 *, compiled: bool = True):
        self.source = source
        self.name = name
        self.interp = Interp(compiled=compiled)
        self._ctx_cell: List[Optional[ScriptContext]] = [None]
        _register_bridge(self.interp, self._ctx_cell)
        if compiled:
            self.interp.compile(source)
        if init_script:
            self.interp.eval(init_script)

    def run(self, ctx: ScriptContext) -> None:
        self._ctx_cell[0] = ctx
        try:
            self.interp.eval(self.source)
        finally:
            self._ctx_cell[0] = None

    @property
    def output_lines(self) -> List[str]:
        """Lines produced by ``puts`` across all invocations."""
        return self.interp.output_lines

    def __repr__(self) -> str:
        return f"TclishFilter({self.name})"


def _register_bridge(interp: Interp, cell: List[Optional[ScriptContext]]) -> None:
    """Install the PFI utility commands on a tclish interpreter."""

    def ctx() -> ScriptContext:
        current = cell[0]
        if current is None:
            raise TclError("no message is being filtered right now")
        return current

    def cmd(name: str):
        def decorator(fn):
            interp.register_command(name, fn)
            return fn
        return decorator

    @cmd("msg_type")
    def _msg_type(_i, args):
        return ctx().msg_type()

    @cmd("msg_log")
    def _msg_log(_i, args):
        note = args[1] if len(args) > 1 else ""
        ctx().log(note)
        return ""

    @cmd("msg_field")
    def _msg_field(_i, args):
        if not args:
            raise TclError('usage: msg_field name')
        value = ctx().field(args[0])
        return _stringify(value)

    @cmd("msg_set_field")
    def _msg_set_field(_i, args):
        if len(args) != 2:
            raise TclError('usage: msg_set_field name value')
        ctx().set_field(args[0], _parse_scalar(args[1]))
        return ""

    @cmd("msg_len")
    def _msg_len(_i, args):
        return str(len(ctx().msg))

    @cmd("xDrop")
    def _drop(_i, args):
        ctx().drop()
        return ""

    @cmd("xDelay")
    def _delay(_i, args):
        numeric = [a for a in args if _is_number(a)]
        if not numeric:
            raise TclError("usage: xDelay ?cur_msg? seconds")
        ctx().delay(float(numeric[0]))
        return ""

    @cmd("xDuplicate")
    def _duplicate(_i, args):
        numeric = [a for a in args if _is_number(a)]
        copies = int(float(numeric[0])) if numeric else 1
        ctx().duplicate(copies)
        return ""

    @cmd("xHold")
    def _hold(_i, args):
        tag = _tag_arg(args)
        ctx().hold(tag)
        return ""

    @cmd("xRelease")
    def _release(_i, args):
        tag = _tag_arg(args)
        ctx().release(tag)
        return ""

    @cmd("held_count")
    def _held_count(_i, args):
        tag = _tag_arg(args)
        return str(ctx().held_count(tag))

    @cmd("inject")
    def _inject(_i, args):
        if not args:
            raise TclError("usage: inject type ?field value ...?")
        type_name = args[0]
        rest = args[1:]
        direction = None
        if rest and rest[0] in ("send", "receive"):
            direction = rest[0]
            rest = rest[1:]
        if len(rest) % 2 != 0:
            raise TclError("inject fields must come in name/value pairs")
        fields = {rest[i]: _parse_scalar(rest[i + 1]) for i in range(0, len(rest), 2)}
        ctx().inject(type_name, direction=direction, **fields)
        return ""

    @cmd("now")
    def _now(_i, args):
        return repr(ctx().now)

    @cmd("peer_set")
    def _peer_set(_i, args):
        # write a variable into the *other* filter's state -- "the send
        # filter might set a variable in the receive interpreter"
        if len(args) != 2:
            raise TclError("usage: peer_set key value")
        ctx().set_peer(args[0], _parse_scalar(args[1]))
        return ""

    @cmd("peer_get")
    def _peer_get(_i, args):
        # read a variable the peer filter deposited for us (peer_set on
        # their side lands in OUR state)
        default = args[1] if len(args) > 1 else ""
        value = ctx().state.get(args[0], default)
        return _stringify(value)

    @cmd("sync_set")
    def _sync_set(_i, args):
        value = _parse_scalar(args[1]) if len(args) > 1 else 1
        ctx().sync.set_flag(args[0], value)
        return ""

    @cmd("sync_get")
    def _sync_get(_i, args):
        default = args[1] if len(args) > 1 else ""
        return _stringify(ctx().sync.get_flag(args[0], default))

    @cmd("dst_normal")
    def _dst_normal(_i, args):
        return repr(ctx().dist.dst_normal(float(args[0]), float(args[1])))

    @cmd("dst_uniform")
    def _dst_uniform(_i, args):
        return repr(ctx().dist.dst_uniform(float(args[0]), float(args[1])))

    @cmd("dst_exponential")
    def _dst_exponential(_i, args):
        return repr(ctx().dist.dst_exponential(float(args[0])))

    @cmd("chance")
    def _chance(_i, args):
        return "1" if ctx().dist.chance(float(args[0])) else "0"

    @cmd("node_name")
    def _node_name(_i, args):
        return ctx().node

    @cmd("direction")
    def _direction(_i, args):
        return ctx().direction


def _tag_arg(args) -> str:
    """Pull the hold-queue tag out of args, ignoring a cur_msg handle."""
    for arg in args:
        if arg != "cur_msg":
            return arg
    return "default"


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _parse_scalar(text: str):
    """Best-effort string -> int/float passthrough for field values."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _stringify(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if value is None:
        return ""
    return str(value)
