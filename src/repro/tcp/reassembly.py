"""Out-of-order segment reassembly.

RFC-1122: "a TCP SHOULD queue out-of-order segments" because dropping them
costs retransmissions and throughput.  The paper's Experiment 5 verified
all four vendors do queue; the profile knob ``queue_out_of_order`` lets
tests exercise the drop policy too.

The queue holds byte ranges keyed by sequence number and hands back every
contiguous run once the gap fills.  Overlapping segments are trimmed so
each byte is delivered exactly once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.tcp.segment import seq_add, seq_lt, seq_sub


class ReassemblyQueue:
    """Buffer for segments that arrived above ``rcv_nxt``."""

    def __init__(self, max_bytes: int = 65536):
        self._segments: Dict[int, bytes] = {}
        self._max_bytes = max_bytes

    @property
    def buffered_bytes(self) -> int:
        """Total payload bytes parked in the queue."""
        return sum(len(data) for data in self._segments.values())

    @property
    def segment_count(self) -> int:
        """Number of distinct buffered ranges."""
        return len(self._segments)

    def add(self, seq: int, data: bytes) -> bool:
        """Buffer an out-of-order byte range.  Returns False if full."""
        if not data:
            return True
        if self.buffered_bytes + len(data) > self._max_bytes:
            return False
        existing = self._segments.get(seq)
        if existing is None or len(data) > len(existing):
            self._segments[seq] = data
        return True

    def extract(self, rcv_nxt: int) -> Tuple[bytes, int]:
        """Pull every byte now contiguous with ``rcv_nxt``.

        Returns ``(data, new_rcv_nxt)``.  Ranges that start at or before
        ``rcv_nxt`` are trimmed to avoid duplicate delivery; fully stale
        ranges are discarded.
        """
        delivered = bytearray()
        cursor = rcv_nxt
        progressing = True
        while progressing:
            progressing = False
            for seq in sorted(self._segments,
                              key=lambda s: seq_sub(s, rcv_nxt)):
                data = self._segments[seq]
                end = seq_add(seq, len(data))
                if seq_lt(cursor, seq):
                    continue  # still a gap before this range
                # seq <= cursor: usable if it extends past the cursor
                self._segments.pop(seq)
                if seq_lt(cursor, end):
                    skip = seq_sub(cursor, seq)
                    delivered.extend(data[skip:])
                    cursor = end
                    progressing = True
                break
        return bytes(delivered), cursor

    def clear(self) -> None:
        """Drop everything buffered."""
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._segments)
