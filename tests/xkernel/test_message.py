"""Unit tests for the message abstraction."""

import pytest

from repro.xkernel.message import Message


def test_push_pop_header():
    msg = Message(b"data")
    msg.push_header({"layer": "tcp"})
    msg.push_header({"layer": "ip"})
    assert msg.pop_header() == {"layer": "ip"}
    assert msg.pop_header() == {"layer": "tcp"}


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        Message().pop_header()


def test_top_header():
    msg = Message()
    assert msg.top_header is None
    msg.push_header("h1")
    msg.push_header("h2")
    assert msg.top_header == "h2"


def test_find_header_by_type():
    class A:
        pass

    class B:
        pass

    msg = Message()
    a, b = A(), B()
    msg.push_header(a)
    msg.push_header(b)
    assert msg.find_header(A) is a
    assert msg.find_header(B) is b
    assert msg.find_header(int) is None


def test_find_header_outermost_first():
    msg = Message()
    msg.push_header({"n": 1})
    msg.push_header({"n": 2})
    assert msg.find_header(dict)["n"] == 2


def test_len_of_bytes_payload():
    assert len(Message(b"hello")) == 5


def test_len_of_str_payload():
    assert len(Message("héllo")) == len("héllo".encode())


def test_len_of_object_payload_is_zero():
    assert len(Message(object())) == 0


def test_uids_unique():
    assert Message().uid != Message().uid


def test_copy_is_independent():
    msg = Message(b"data", meta={"dst": 2})
    msg.push_header({"seq": 1})
    clone = msg.copy()
    clone.headers[0]["seq"] = 99
    clone.meta["dst"] = 5
    assert msg.headers[0]["seq"] == 1
    assert msg.meta["dst"] == 2


def test_copy_gets_fresh_uid_and_lineage():
    msg = Message(b"x")
    clone = msg.copy()
    assert clone.uid != msg.uid
    assert clone.meta["copied_from"] == msg.uid


def test_copy_deepcopies_object_payload():
    payload = {"k": [1, 2]}
    msg = Message(payload)
    clone = msg.copy()
    clone.payload["k"].append(3)
    assert payload["k"] == [1, 2]


def test_copy_shares_immutable_bytes():
    msg = Message(b"immutable")
    assert msg.copy().payload is msg.payload
