"""Shape assertions for the TCP experiments (paper Tables 1-4, Exp 5).

These are the authoritative checks that the reproduction exhibits the
paper's findings: who differs from whom, in which direction, and by
roughly what structure.  The benchmarks print the tables; these tests
pin the shapes.
"""

import pytest

from repro.analysis.shape import is_exponential_backoff
from repro.experiments import (tcp_delayed_ack, tcp_keepalive,
                               tcp_reordering, tcp_retransmission,
                               tcp_zero_window)
from repro.tcp import BSD_DERIVED, SOLARIS_23, SUNOS_413, VENDORS

pytestmark = pytest.mark.experiment


@pytest.fixture(scope="module")
def table1():
    return tcp_retransmission.run_all()


@pytest.fixture(scope="module")
def table2_3s():
    return tcp_delayed_ack.run_all(3.0)


class TestTable1Retransmission:
    def test_bsd_vendors_retransmit_12_times(self, table1):
        for name in BSD_DERIVED:
            assert table1[name].retransmissions == 12

    def test_bsd_vendors_send_reset(self, table1):
        for name in BSD_DERIVED:
            assert table1[name].reset_sent

    def test_bsd_backoff_exponential_with_64s_bound(self, table1):
        for name in BSD_DERIVED:
            assert table1[name].backoff_exponential
            assert table1[name].upper_bound == pytest.approx(64.0, rel=0.05)

    def test_solaris_retransmits_9_times(self, table1):
        assert table1["Solaris 2.3"].retransmissions == 9

    def test_solaris_closes_without_reset(self, table1):
        assert not table1["Solaris 2.3"].reset_sent

    def test_solaris_never_reaches_upper_bound(self, table1):
        assert table1["Solaris 2.3"].upper_bound is None

    def test_solaris_starts_from_330ms_floor(self, table1):
        assert table1["Solaris 2.3"].intervals[0] == pytest.approx(
            0.330, rel=0.1)

    def test_all_connections_die(self, table1):
        for result in table1.values():
            assert result.close_reason == "retransmission_timeout"

    def test_packets_were_logged_before_dropping(self, table1):
        for result in table1.values():
            assert result.logged_packets > 0


class TestTable2DelayedAcks:
    def test_bsd_adapts_above_injected_delay(self, table2_3s):
        for name in BSD_DERIVED:
            assert table2_3s[name].adapted_above_delay

    def test_bsd_first_retransmit_ordering(self, table2_3s):
        """The paper's spread: NeXT < SunOS < AIX."""
        next_first = table2_3s["NeXT Mach"].first_retransmit_interval
        sun_first = table2_3s["SunOS 4.1.3"].first_retransmit_interval
        aix_first = table2_3s["AIX 3.2.3"].first_retransmit_interval
        assert next_first < sun_first < aix_first

    def test_solaris_does_not_adapt(self, table2_3s):
        assert not table2_3s["Solaris 2.3"].adapted_above_delay
        assert table2_3s["Solaris 2.3"].first_retransmit_interval < 3.0

    def test_solaris_dies_before_bsd_budget(self, table2_3s):
        assert table2_3s["Solaris 2.3"].retransmissions <= 9

    def test_8s_delay_same_shape(self):
        results = tcp_delayed_ack.run_all(8.0)
        for name in BSD_DERIVED:
            assert results[name].adapted_above_delay
        assert not results["Solaris 2.3"].adapted_above_delay

    def test_global_counter_probe_solaris(self):
        probe = tcp_delayed_ack.run_global_counter_probe(SOLARIS_23)
        # m1 retransmitted several times before its 35 s-delayed ACK, m2
        # got only the remainder; total hits the threshold of 9
        assert probe.m1_retransmissions >= 5
        assert 1 <= probe.m2_retransmissions <= 4
        assert probe.total == 9
        assert probe.close_reason == "retransmission_timeout"

    def test_global_counter_probe_bsd_contrast(self):
        probe = tcp_delayed_ack.run_global_counter_probe(SUNOS_413)
        # per-segment counting: m2 gets its full 12 regardless of m1
        assert probe.m2_retransmissions == 12


class TestTable3KeepAlive:
    @pytest.fixture(scope="class")
    def table3(self):
        return tcp_keepalive.run_all()

    def test_bsd_first_probe_at_7200(self, table3):
        for name in BSD_DERIVED:
            assert table3[name].first_probe_at == pytest.approx(7200.0,
                                                                abs=5.0)

    def test_solaris_violates_spec_threshold(self, table3):
        assert table3["Solaris 2.3"].first_probe_at == pytest.approx(
            6752.0, abs=5.0)
        assert table3["Solaris 2.3"].first_probe_at < 7200.0

    def test_bsd_8_retransmits_at_75s_then_reset(self, table3):
        for name in BSD_DERIVED:
            result = table3[name]
            assert result.probe_retransmissions == 8
            assert all(i == pytest.approx(75.0, rel=0.01)
                       for i in result.retransmit_intervals)
            assert result.reset_sent

    def test_solaris_7_backoff_retransmits_no_reset(self, table3):
        result = table3["Solaris 2.3"]
        assert result.probe_retransmissions == 7
        assert not result.reset_sent
        assert is_exponential_backoff(result.retransmit_intervals,
                                      floor=SOLARIS_23.min_rto)

    def test_probe_formats(self, table3):
        assert table3["SunOS 4.1.3"].garbage_byte
        assert not table3["AIX 3.2.3"].garbage_byte
        assert not table3["NeXT Mach"].garbage_byte
        for result in table3.values():
            assert result.probe_seq_is_nxt_minus_1

    def test_answered_probes_repeat_at_idle_interval(self, table3):
        for name, result in table3.items():
            expected = VENDORS[name].ka_idle
            assert result.answered_still_open
            for interval in result.answered_probe_intervals:
                assert interval == pytest.approx(expected, rel=0.01)


class TestTable4ZeroWindow:
    @pytest.fixture(scope="class")
    def acked(self):
        return tcp_zero_window.run_all("acked")

    @pytest.fixture(scope="class")
    def unacked(self):
        return tcp_zero_window.run_all("unacked")

    def test_bsd_plateau_60(self, acked):
        for name in BSD_DERIVED:
            assert acked[name].plateau == pytest.approx(60.0, rel=0.02)

    def test_solaris_plateau_56(self, acked):
        assert acked["Solaris 2.3"].plateau == pytest.approx(56.0, rel=0.02)

    def test_backoff_exponential(self, acked):
        for result in acked.values():
            assert result.backoff_exponential

    def test_probing_continues_when_acked(self, acked):
        for result in acked.values():
            assert result.still_probing_at_end
            assert result.still_open

    def test_probing_continues_even_unacked(self, unacked):
        """The paper's "could pose a problem" observation."""
        for result in unacked.values():
            assert result.still_probing_at_end
            assert result.still_open

    def test_unplug_two_days_still_probing(self):
        result = tcp_zero_window.run_zero_window(SUNOS_413,
                                                 variant="unplugged")
        assert result.probes_after_replug > 0
        assert result.still_open


class TestExperiment5Reordering:
    @pytest.fixture(scope="class")
    def results(self):
        return tcp_reordering.run_all()

    def test_all_vendors_queue_out_of_order(self, results):
        for result in results.values():
            assert result.second_segment_queued

    def test_cumulative_ack_covers_both(self, results):
        for result in results.values():
            assert result.acked_both_at_once

    def test_data_integrity(self, results):
        for result in results.values():
            assert result.data_delivered_in_order
            assert result.duplicate_deliveries == 0
