"""Unit tests for GMP views and message types."""

import pytest

from repro.gmp.messages import (ALL_KINDS, COMMIT, DEAD_REPORT,
                                GmpMessage, PROCLAIM)
from repro.gmp.views import GroupView, singleton_view


class TestGroupView:
    def test_members_sorted_and_deduped(self):
        view = GroupView(1, (3, 1, 2, 1))
        assert view.members == (1, 2, 3)

    def test_leader_is_lowest(self):
        assert GroupView(1, (5, 2, 9)).leader == 2

    def test_crown_prince_is_second_lowest(self):
        assert GroupView(1, (5, 2, 9)).crown_prince == 5

    def test_singleton_has_no_crown_prince(self):
        view = singleton_view(7)
        assert view.is_singleton
        assert view.crown_prince is None
        assert view.leader == 7

    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            GroupView(1, ())

    def test_contains(self):
        view = GroupView(1, (1, 2))
        assert view.contains(1)
        assert not view.contains(3)

    def test_without(self):
        assert GroupView(1, (1, 2, 3)).without(2) == (1, 3)
        assert GroupView(1, (1, 2, 3)).without(2, 3) == (1,)

    def test_with_added(self):
        assert GroupView(1, (1, 3)).with_added(2) == (1, 2, 3)
        assert GroupView(1, (1,)).with_added(1) == (1,)

    def test_immutable(self):
        view = GroupView(1, (1, 2))
        with pytest.raises(Exception):
            view.group_id = 5

    def test_equality(self):
        assert GroupView(1, (1, 2)) == GroupView(1, (2, 1))
        assert GroupView(1, (1, 2)) != GroupView(2, (1, 2))


class TestGmpMessage:
    def test_originator_defaults_to_sender(self):
        msg = GmpMessage(kind=PROCLAIM, sender=4)
        assert msg.originator == 4

    def test_explicit_originator_preserved(self):
        msg = GmpMessage(kind=PROCLAIM, sender=2, originator=5)
        assert msg.originator == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GmpMessage(kind="GOSSIP", sender=1)

    def test_all_kinds_constructible(self):
        for kind in ALL_KINDS:
            assert GmpMessage(kind=kind, sender=1).kind == kind

    def test_copy_independent(self):
        msg = GmpMessage(kind=COMMIT, sender=1, members=(1, 2))
        clone = msg.copy()
        assert clone.members == (1, 2)
        assert clone is not msg

    def test_repr_mentions_subject_for_dead_report(self):
        msg = GmpMessage(kind=DEAD_REPORT, sender=1, subject=3)
        assert "subject=3" in repr(msg)
