"""Checkpoint/fork: snapshot a warmed-up testbed, continue it N ways.

Every fuzz trial, ddmin probe and campaign run used to replay its whole
testbed from t=0 even though most trials share a long prefix (handshake,
view formation, steady state).  This module turns that prefix into a
reusable artifact: :meth:`Checkpoint.capture` freezes a live
:class:`~repro.core.orchestrator.ExperimentEnv` -- scheduler heap with
its bound-state callbacks, protocol sessions hanging off the scheduled
events (TCP connections, GMP daemons/views/timers), installed filter
scripts with their tclish interpreter state, PFI hold queues, the trace
position and the seeded RNG streams -- and every :meth:`Checkpoint.fork`
yields an independent continuation of that exact moment.

The mechanics are a :func:`copy.deepcopy` of the *world graph* rooted at
the environment, which is only sound because the simulator schedules
**bound methods and callable-class instances, never closures**:
``deepcopy`` treats functions as atomic values, so a lambda stored in a
heap entry would keep pointing into the original world and the fork
would silently cross-talk with it.  :func:`audit_scheduler` enforces
that rule at capture time by walking the pending heap and rejecting any
callback whose identity cannot survive the copy.

Two further pieces make forks cheap and correct:

- the trace prefix is **shared, not copied**: the deepcopy memo is
  pre-seeded with :meth:`TraceRecorder.fork`, which reuses the
  write-once entry objects of the prefix, so a million-entry warmup is
  O(1) per fork instead of O(entries);
- forks can be **re-seeded** to a different run seed
  (``fork(seed=...)``), re-deriving the network link streams and every
  ``env.dist(...)`` stream exactly as a cold run under that seed would
  have.  This is valid only while the prefix consumed zero RNG draws --
  the stock rigs satisfy that (links carry no jitter/loss, filter
  scripts are not yet installed) and the draw counters prove it; a
  prefix that did draw raises :class:`CheckpointError` instead of
  diverging silently.

Invalidation rules (also in ``docs/checkpointing.md``): a checkpoint is
tied to the exact prefix code, seed-portable only under the zero-draw
condition above, process-local (never pickled), and its ``identity``
digest is what consumers mix into cache keys (see
:meth:`repro.core.orchestrator.RunCache.key`) so results computed from
different prefixes can never alias.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import inspect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.orchestrator import ExperimentEnv
from repro.netsim.scheduler import Scheduler, SchedulerClock

#: default-argument types a plain scheduled function may carry without
#: smuggling world state past the deepcopy
_ATOMIC_DEFAULTS = (int, float, str, bytes, bool, frozenset, type(None))


class CheckpointError(RuntimeError):
    """A world cannot be captured, forked, or re-seeded soundly."""


def _callable_issue(fn: Any, where: str) -> Optional[str]:
    """Why ``fn`` would not survive a world deepcopy, or None if it would.

    Bound methods and callable-class instances follow the deepcopy memo
    into the fork; plain functions are atomic, which is fine only when
    they are genuinely stateless (no closure cells, no mutable/world
    defaults).
    """
    if isinstance(fn, functools.partial):
        return _callable_issue(fn.func, where)
    if inspect.ismethod(fn):
        return None  # bound method: __self__ is deep-copied via the memo
    if inspect.isfunction(fn):
        if fn.__closure__:
            return (f"{where}: closure {fn.__qualname__} would keep "
                    f"referencing the original world after a fork")
        for default in (fn.__defaults__ or ()):
            if not isinstance(default, _ATOMIC_DEFAULTS):
                return (f"{where}: function {fn.__qualname__} smuggles a "
                        f"{type(default).__name__} through a default "
                        f"argument; pass it via scheduler args instead")
        return None
    if callable(fn):
        return None  # callable instance: deep-copied via the memo
    return f"{where}: {fn!r} is not callable"


def audit_scheduler(scheduler: Scheduler) -> List[str]:
    """Deepcopy-safety issues among the scheduler's pending callbacks.

    Returns human-readable findings (empty means the heap is clean).
    :meth:`Checkpoint.capture` runs this by default and refuses to
    snapshot a world that would fork unsoundly.
    """
    issues = []
    for event in scheduler.pending_events():
        issue = _callable_issue(
            event.callback, f"event@t={event.time:.6f}")
        if issue is not None:
            issues.append(issue)
    return issues


@dataclass
class Forked:
    """One independent continuation of a checkpoint."""

    env: ExperimentEnv
    roots: Dict[str, Any]
    checkpoint: "Checkpoint"

    def __getitem__(self, key: str) -> Any:
        """Convenience access to a named root (``fork["cluster"]``)."""
        return self.roots[key]


class Checkpoint:
    """A frozen moment of one simulation, forkable any number of times.

    ``capture`` deep-copies the live world once into a pristine
    snapshot (so the caller may keep running the original); each
    ``fork`` deep-copies the snapshot again.  ``roots`` carries the rig
    objects a continuation needs back out of the copy -- a testbed, a
    cluster, a client connection -- anything reachable from them is
    copied consistently with the environment because everything goes
    through one shared deepcopy memo.
    """

    def __init__(self, snapshot: Dict[str, Any], *, label: str,
                 identity: str, time: float, position: int):
        self._snapshot = snapshot
        self.label = label
        self.identity = identity
        #: virtual time at capture
        self.time = time
        #: trace length at capture
        self.position = position
        #: how many forks this checkpoint has produced
        self.forks = 0

    @classmethod
    def capture(cls, env: ExperimentEnv,
                roots: Optional[Dict[str, Any]] = None, *,
                label: str = "", audit: bool = True) -> "Checkpoint":
        """Snapshot ``env`` (plus named rig ``roots``) as of right now.

        The scheduler heap is compacted first so cancelled tombstones
        are not copied into every fork, and (unless ``audit=False``)
        every pending callback is vetted twice: first by the *static*
        audit (:func:`repro.staticcheck.audit_pending`), which pins
        each finding to the offending function's source line, then by
        the runtime :func:`audit_scheduler` for anything the static
        pass cannot see.
        """
        if audit:
            from repro.staticcheck import audit_pending
            static = audit_pending(env.scheduler,
                                   atomic=_ATOMIC_DEFAULTS)
            if static:
                raise CheckpointError(
                    "world is not checkpoint-safe (static audit):\n  "
                    + "\n  ".join(diag.format(path)
                                  for path, diag in static))
            issues = audit_scheduler(env.scheduler)
            if issues:
                raise CheckpointError(
                    "world is not checkpoint-safe:\n  "
                    + "\n  ".join(issues))
        env.scheduler.compact()
        world = {"env": env, "roots": dict(roots or {})}
        snapshot = _copy_world(world)
        identity = _identity(env, world["roots"], label)
        return cls(snapshot, label=label or f"t={env.scheduler.now:g}",
                   identity=identity, time=env.scheduler.now,
                   position=env.trace.position)

    def fork(self, *, seed: Optional[int] = None) -> Forked:
        """An independent continuation; optionally re-seeded.

        With ``seed`` given (and different from the captured seed), the
        fork's RNG streams are re-derived as a cold run under that seed
        would have derived them -- sound only for zero-draw prefixes,
        enforced by the stream draw counters.
        """
        world = _copy_world(self._snapshot)
        env: ExperimentEnv = world["env"]
        if seed is not None and seed != env.seed:
            try:
                env.reseed(seed)
            except RuntimeError as err:
                raise CheckpointError(
                    f"checkpoint {self.label!r} cannot be re-seeded: "
                    f"{err}") from err
        self.forks += 1
        return Forked(env=env, roots=world["roots"], checkpoint=self)

    def __repr__(self) -> str:
        return (f"Checkpoint({self.label}, t={self.time:g}, "
                f"entries={self.position}, forks={self.forks})")


def _copy_world(world: Dict[str, Any]) -> Dict[str, Any]:
    """Deep-copy a world graph, sharing the trace prefix.

    The memo is pre-seeded so every reference to the environment's
    recorder lands on a shallow fork that reuses the prefix's write-once
    entry objects; afterwards the copy's recorder is re-bound to the
    copy's scheduler (deepcopy routes :class:`TraceRecorder` through its
    ``__getstate__``, which deliberately drops the clock).
    """
    env: ExperimentEnv = world["env"]
    memo: Dict[int, Any] = {id(env.trace): env.trace.fork()}
    copied = copy.deepcopy(world, memo)
    new_env: ExperimentEnv = copied["env"]
    new_env.trace.bind_clock(SchedulerClock(new_env.scheduler))
    return copied


def _identity(env: ExperimentEnv, roots: Dict[str, Any],
              label: str) -> str:
    """A content digest naming what this checkpoint is a snapshot *of*.

    Mixes the capture label, seed, scheduler progress and the trace's
    per-kind histogram: two checkpoints built by different prefix code,
    depths or seeds get different identities, which is what cache keys
    need (full byte-level state hashing would cost more than the fork
    it protects).
    """
    digest = hashlib.sha256()
    digest.update(label.encode())
    digest.update(str(env.seed).encode())
    digest.update(f"{env.scheduler.now!r}".encode())
    digest.update(str(env.scheduler.dispatched_count).encode())
    digest.update(str(env.trace.position).encode())
    for kind, count in sorted(env.trace.count_by_kind().items()):
        digest.update(f"{kind}={count};".encode())
    digest.update(",".join(sorted(roots)).encode())
    return digest.hexdigest()[:16]
