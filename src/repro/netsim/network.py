"""The virtual network: nodes, pairwise links, and partitions.

The :class:`Network` wires every pair of attached nodes with two directed
:class:`~repro.netsim.link.Link` objects (one per direction) created lazily
on first use.  That gives experiments per-direction control: the paper's
partition tests drop traffic between specific machine pairs while leaving
other pairs untouched, and the leader/crown-prince separation drops traffic
in both directions for exactly one pair.

Partitions are expressed as groups of addresses: traffic crossing a group
boundary is discarded at the sending edge.  Partitions compose with per-link
up/down state -- a link must be up *and* not cut by a partition to carry.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder


class _LinkDeliver:
    """Per-link delivery callback handing payloads to the receiving node.

    A class rather than ``lambda payload: node.receive(payload, src)``:
    ``copy.deepcopy`` treats functions as atomic, so a closure stored in
    a link would keep delivering into the *original* node inside a
    checkpointed fork, while an instance follows the deepcopy memo.
    """

    __slots__ = ("node", "src")

    def __init__(self, node: Node, src: int):
        self.node = node
        self.src = src

    def __call__(self, payload: Any) -> None:
        self.node.receive(payload, self.src)


class Network:
    """A mesh network over a shared scheduler.

    Parameters
    ----------
    scheduler:
        The virtual clock shared by every component of the experiment.
    default_latency:
        One-way latency for lazily created links (seconds).
    seed:
        Seed for the network's RNG, from which each link derives its own
        stream; runs with equal seeds are bit-identical.
    """

    def __init__(self, scheduler: Scheduler, *, default_latency: float = 0.001,
                 seed: int = 0, trace: Optional[TraceRecorder] = None):
        self.scheduler = scheduler
        self.default_latency = default_latency
        self._seed = seed
        self.trace = trace
        self._nodes: Dict[int, Node] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        self._partition: Optional[List[frozenset]] = None

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def attach(self, node: Node) -> Node:
        """Add a node to the network.  Addresses must be unique."""
        if node.address in self._nodes:
            raise ValueError(f"duplicate address {node.address}")
        node.network = self
        self._nodes[node.address] = node
        return node

    def add_node(self, name: str, address: int) -> Node:
        """Create and attach a node in one step."""
        return self.attach(Node(name, address))

    def node(self, address: int) -> Node:
        """Look up a node by address."""
        return self._nodes[address]

    def nodes(self) -> List[Node]:
        """All attached nodes, ordered by address."""
        return [self._nodes[a] for a in sorted(self._nodes)]

    def link(self, src: int, dst: int) -> Link:
        """The directed link src->dst, created lazily with defaults."""
        key = (src, dst)
        if key not in self._links:
            node = self._nodes[dst]
            link_rng = random.Random(f"{self._seed}/{src}/{dst}")
            self._links[key] = Link(
                self.scheduler,
                _LinkDeliver(node, src),
                latency=self.default_latency,
                rng=link_rng,
                name=f"{src}->{dst}",
            )
        return self._links[key]

    def reseed(self, seed: int) -> None:
        """Re-derive every link's RNG stream from a new network seed.

        Part of the checkpoint/fork restore path: a forked world can be
        re-targeted to another run seed *only* while no link has drawn
        from its stream yet, otherwise the fork would diverge from a
        cold run of the new seed (which would have consumed its own
        draws during the shared prefix).
        """
        for (src, dst), link in sorted(self._links.items()):
            if link.rng_draws:
                raise RuntimeError(
                    f"link {src}->{dst} consumed {link.rng_draws} RNG "
                    f"draw(s) before the reseed; checkpoint is not "
                    f"seed-portable")
        self._seed = seed
        for (src, dst), link in self._links.items():
            link.reseed(random.Random(f"{seed}/{src}/{dst}"))

    def set_link_down(self, src: int, dst: int, *, both: bool = True) -> None:
        """Unplug the link(s) between two nodes."""
        self.link(src, dst).down()
        if both:
            self.link(dst, src).down()

    def set_link_up(self, src: int, dst: int, *, both: bool = True) -> None:
        """Replug the link(s) between two nodes."""
        self.link(src, dst).up()
        if both:
            self.link(dst, src).up()

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------

    def partition(self, *groups: Sequence[int]) -> None:
        """Split the network into isolated groups of addresses.

        Nodes not mentioned in any group form an implicit extra group
        together (they can talk to each other but to nobody listed).
        """
        listed = [frozenset(group) for group in groups]
        mentioned = set().union(*listed) if listed else set()
        rest = frozenset(a for a in self._nodes if a not in mentioned)
        if rest:
            listed.append(rest)
        self._partition = listed

    def heal(self) -> None:
        """Remove any partition; full connectivity resumes."""
        self._partition = None

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        for group in self._partition:
            if src in group:
                return dst not in group
        return True  # src not in any group: isolated from everyone listed

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any) -> bool:
        """Carry a payload from src to dst.  Returns True if accepted.

        Loopback (src == dst) is delivered through the scheduler with the
        link latency like any other traffic: the paper's GMP sends
        heartbeats to the local machine through the same code path, which
        is exactly what made its self-death bug injectable.
        """
        if dst not in self._nodes:
            # unroutable destination: silently dropped, like a real
            # network facing a spoofed source address (fault-injection
            # probes may legitimately carry phantom addresses)
            if self.trace is not None:
                self.trace.record("net.unroutable", src=src, dst=dst)
            return False
        if self._crosses_partition(src, dst):
            if self.trace is not None:
                self.trace.record("net.partition_drop", src=src, dst=dst)
            return False
        accepted = self.link(src, dst).send(payload)
        if self.trace is not None:
            kind = "net.send" if accepted else "net.link_drop"
            self.trace.record(kind, src=src, dst=dst)
        return accepted

    def broadcast(self, src: int, payload_factory, *, include_self: bool = False) -> int:
        """Send ``payload_factory(dst)`` to every node.  Returns #accepted."""
        accepted = 0
        for address in sorted(self._nodes):
            if address == src and not include_self:
                continue
            if self.send(src, address, payload_factory(address)):
                accepted += 1
        return accepted

    def __repr__(self) -> str:
        part = "partitioned" if self._partition else "whole"
        return f"Network({len(self._nodes)} nodes, {len(self._links)} links, {part})"
