"""repro.staticcheck: the three-pass static correctness suite.

Distinct from :mod:`repro.analysis` (results analysis): this package
analyzes the *source tree*, before anything runs.  All three passes
share scriptlint's :class:`~repro.core.tclish.lint.Diagnostic`
infrastructure -- one code table, one report type, one fingerprint
scheme, one SARIF exporter -- and surface as the single ``repro check``
command (see ``docs/staticcheck.md``):

- **Pass 1** -- scriptlint's dataflow analysis of tclish filter
  scripts (SL0xx), covering ``examples/filters`` and the regression
  corpus' embedded fault scripts;
- **Pass 2** -- the Python-AST determinism / checkpoint-safety linter
  (:mod:`~repro.staticcheck.determinism`, SC1xx), covering
  ``src/repro/experiments``, ``gmp`` and ``tcp``, and powering the
  :meth:`Checkpoint.capture` / :class:`Campaign` pre-flights;
- **Pass 3** -- the trace-schema drift checker
  (:mod:`~repro.staticcheck.drift`, SC2xx), diffing harvested emit
  sites against oracle subscriptions and the
  :mod:`repro.netsim.kinds` registry.
"""

from repro.staticcheck.determinism import (audit_pending, check_file,
                                           check_source, precheck_body)
from repro.staticcheck.drift import check_drift, coverage_summary
from repro.staticcheck.harvest import (DynamicEmit, EmitSite, Harvest,
                                       Subscription, harvest_paths)
from repro.staticcheck.sarif import render_sarif
from repro.staticcheck.suite import SuiteResult, repo_root, run_suite

__all__ = [
    "DynamicEmit",
    "EmitSite",
    "Harvest",
    "Subscription",
    "SuiteResult",
    "audit_pending",
    "check_drift",
    "check_file",
    "check_source",
    "coverage_summary",
    "harvest_paths",
    "precheck_body",
    "render_sarif",
    "repo_root",
    "run_suite",
]
