"""Arithmetic/logic expression evaluation for the ``expr`` command.

A small recursive-descent parser over an already-substituted expression
string.  Supported grammar (loosest binding first)::

    ternary : or ('?' ternary ':' ternary)?
    or      : and ('||' and)*
    and     : bitor ('&&' bitor)*
    bitor   : bitxor ('|' bitxor)*
    bitxor  : bitand ('^' bitand)*
    bitand  : equality ('&' equality)*
    equality: relational (('==' | '!=' | 'eq' | 'ne') relational)*
    relational: shift (('<' | '>' | '<=' | '>=') shift)*
    shift   : additive (('<<' | '>>') additive)*
    additive: term (('+' | '-') term)*
    term    : unary (('*' | '/' | '%') unary)*
    unary   : ('-' | '+' | '!' | '~') unary | primary
    primary : NUMBER | STRING | '(' ternary ')' | FUNC '(' args ')'

Numbers are Python ints (decimal/hex/octal-as-decimal) or floats; ``eq`` and
``ne`` force string comparison; ``==`` on two non-numeric operands also
compares strings, matching Tcl's forgiving behaviour.  Division follows
Tcl/C semantics: int/int truncates toward negative infinity like Tcl does
(Python's ``//`` already does).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, List, Union

from repro.core.tclish.errors import TclError

Number = Union[int, float]
Value = Union[int, float, str]

_FUNCTIONS: Dict[str, Callable[..., Number]] = {
    "abs": abs,
    "int": lambda x: int(x),
    "double": lambda x: float(x),
    "round": lambda x: int(round(x)),
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "pow": lambda x, y: x ** y,
    "fmod": math.fmod,
    "floor": math.floor,
    "ceil": math.ceil,
    "exp": math.exp,
    "log": math.log,
}

_TWO_CHAR_OPS = ("||", "&&", "==", "!=", "<=", ">=", "<<", ">>")


def tokenize(text: str) -> List[str]:
    """Split an expression into operator/number/string/name tokens."""
    tokens: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\n":
            i += 1
            continue
        pair = text[i:i + 2]
        if pair in _TWO_CHAR_OPS:
            tokens.append(pair)
            i += 2
            continue
        if ch in "+-*/%<>!~&|^()?:,":
            tokens.append(ch)
            i += 1
            continue
        if ch == '"':
            j = i + 1
            parts = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                    continue
                parts.append(text[j])
                j += 1
            if j >= n:
                raise TclError("unterminated string in expression")
            tokens.append('"' + "".join(parts) + '"')
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            if text[j:j + 2].lower() == "0x":
                j += 2
                while j < n and text[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                seen_dot = seen_exp = False
                while j < n:
                    c = text[j]
                    if c.isdigit():
                        j += 1
                    elif c == "." and not seen_dot and not seen_exp:
                        seen_dot = True
                        j += 1
                    elif c in "eE" and not seen_exp and j + 1 < n and (
                            text[j + 1].isdigit() or text[j + 1] in "+-"):
                        seen_exp = True
                        j += 1
                        if text[j] in "+-":
                            j += 1
                    else:
                        break
            tokens.append(text[i:j])
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        raise TclError(f"unexpected character {ch!r} in expression")
    return tokens


def coerce_number(value: Value) -> Number:
    """Convert a value to int or float, raising TclError on failure."""
    if isinstance(value, (int, float)):
        return value
    text = value.strip()
    try:
        if text.lower().startswith("0x") or text.lower().startswith("-0x"):
            return int(text, 16)
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise TclError(f"expected number but got {value!r}")


def is_numeric(value: Value) -> bool:
    """True if the value is a number or parses as one."""
    if isinstance(value, (int, float)):
        return True
    try:
        coerce_number(value)
        return True
    except TclError:
        return False


def truth(value: Value) -> bool:
    """Tcl truthiness: numbers by non-zero, strings true/false/yes/no."""
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "yes", "on"):
            return True
        if lowered in ("false", "no", "off"):
            return False
    return coerce_number(value) != 0


def format_value(value: Value) -> str:
    """Render an expression result the way Tcl prints it."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e16:
            return f"{value:.1f}"
        return repr(value)
    return str(value)


class _Parser:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def next(self) -> str:
        token = self.peek()
        self._pos += 1
        return token

    def expect(self, token: str) -> None:
        if self.next() != token:
            raise TclError(f"expected {token!r} in expression")

    # each level returns a Python Value
    def parse(self) -> Value:
        value = self.ternary()
        if self.peek():
            raise TclError(f"trailing garbage in expression: {self.peek()!r}")
        return value

    def ternary(self) -> Value:
        cond = self.logical_or()
        if self.peek() == "?":
            self.next()
            if_true = self.ternary()
            self.expect(":")
            if_false = self.ternary()
            return if_true if truth(cond) else if_false
        return cond

    def logical_or(self) -> Value:
        left = self.logical_and()
        while self.peek() == "||":
            self.next()
            right = self.logical_and()
            left = 1 if (truth(left) or truth(right)) else 0
        return left

    def logical_and(self) -> Value:
        left = self.bit_or()
        while self.peek() == "&&":
            self.next()
            right = self.bit_or()
            left = 1 if (truth(left) and truth(right)) else 0
        return left

    def bit_or(self) -> Value:
        left = self.bit_xor()
        while self.peek() == "|":
            self.next()
            left = int(coerce_number(left)) | int(coerce_number(self.bit_xor()))
        return left

    def bit_xor(self) -> Value:
        left = self.bit_and()
        while self.peek() == "^":
            self.next()
            left = int(coerce_number(left)) ^ int(coerce_number(self.bit_and()))
        return left

    def bit_and(self) -> Value:
        left = self.equality()
        while self.peek() == "&":
            self.next()
            left = int(coerce_number(left)) & int(coerce_number(self.equality()))
        return left

    def equality(self) -> Value:
        left = self.relational()
        while self.peek() in ("==", "!=", "eq", "ne"):
            op = self.next()
            right = self.relational()
            if op in ("eq", "ne"):
                equal = str(left) == str(right)
            elif is_numeric(left) and is_numeric(right):
                equal = coerce_number(left) == coerce_number(right)
            else:
                equal = str(left) == str(right)
            wanted = op in ("==", "eq")
            left = 1 if equal == wanted else 0
        return left

    def relational(self) -> Value:
        left = self.shift()
        while self.peek() in ("<", ">", "<=", ">="):
            op = self.next()
            right = self.shift()
            if is_numeric(left) and is_numeric(right):
                a, b = coerce_number(left), coerce_number(right)
            else:
                a, b = str(left), str(right)
            result = {
                "<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b,
            }[op]
            left = 1 if result else 0
        return left

    def shift(self) -> Value:
        left = self.additive()
        while self.peek() in ("<<", ">>"):
            op = self.next()
            right = int(coerce_number(self.additive()))
            value = int(coerce_number(left))
            left = value << right if op == "<<" else value >> right
        return left

    def additive(self) -> Value:
        left = self.term()
        while self.peek() in ("+", "-"):
            op = self.next()
            right = coerce_number(self.term())
            value = coerce_number(left)
            left = value + right if op == "+" else value - right
        return left

    def term(self) -> Value:
        left = self.unary()
        while self.peek() in ("*", "/", "%"):
            op = self.next()
            right = coerce_number(self.unary())
            value = coerce_number(left)
            if op == "*":
                left = value * right
            elif op == "/":
                if right == 0:
                    raise TclError("divide by zero")
                if isinstance(value, int) and isinstance(right, int):
                    left = value // right
                else:
                    left = value / right
            else:
                if right == 0:
                    raise TclError("divide by zero")
                left = value % right
        return left

    def unary(self) -> Value:
        token = self.peek()
        if token == "-":
            self.next()
            return -coerce_number(self.unary())
        if token == "+":
            self.next()
            return coerce_number(self.unary())
        if token == "!":
            self.next()
            return 0 if truth(self.unary()) else 1
        if token == "~":
            self.next()
            return ~int(coerce_number(self.unary()))
        return self.primary()

    def primary(self) -> Value:
        token = self.next()
        if token == "(":
            value = self.ternary()
            self.expect(")")
            return value
        if not token:
            raise TclError("unexpected end of expression")
        if token.startswith('"'):
            return token[1:-1] if token.endswith('"') else token[1:]
        if token in _FUNCTIONS and self.peek() == "(":
            self.next()
            args: List[Number] = []
            if self.peek() != ")":
                args.append(coerce_number(self.ternary()))
                while self.peek() == ",":
                    self.next()
                    args.append(coerce_number(self.ternary()))
            self.expect(")")
            return _FUNCTIONS[token](*args)
        if is_numeric(token):
            return coerce_number(token)
        # bare word: treat as a string, which lets `expr {$type eq ACK}` work
        return token


def evaluate(text: str) -> Value:
    """Evaluate a fully substituted expression string."""
    return _Parser(tokenize(text)).parse()


#: bounded memo for :func:`evaluate_cached`; conditions like
#: ``DATA eq "ACK"`` recur on every message, churning ones (loop counters)
#: are evicted in LRU order
EVAL_CACHE_MAX = 1024

_EVAL_CACHE: "OrderedDict[str, Value]" = OrderedDict()


def evaluate_cached(text: str) -> Value:
    """Memoised :func:`evaluate`.

    Safe because expression evaluation is pure: command and variable
    substitution already happened before the text reached ``expr``, and
    every operator/function here is deterministic.  Used by the compiled
    execution engine; the parse-per-eval path keeps calling
    :func:`evaluate` directly so benchmarks compare against the original
    behaviour.
    """
    cached = _EVAL_CACHE.get(text, _MISS)
    if cached is not _MISS:
        _EVAL_CACHE.move_to_end(text)
        return cached
    value = evaluate(text)
    _EVAL_CACHE[text] = value
    if len(_EVAL_CACHE) > EVAL_CACHE_MAX:
        _EVAL_CACHE.popitem(last=False)
    return value


class _MissType:
    def __repr__(self):
        return "<miss>"


_MISS = _MissType()
