#!/usr/bin/env python3
"""Quickstart: splice a PFI layer under a protocol and inject faults.

This walks the core workflow of the tool in five minutes:

1. build a virtual network and two protocol stacks;
2. splice the PFI layer beneath the target protocol (TCP here);
3. install a filter script -- first in Python, then the same script in
   tclish, the bundled Tcl-like language the paper used;
4. run the experiment on the virtual clock;
5. read the results out of the trace.

Run it::

    python examples/quickstart.py
"""

from repro.core import PFILayer, TclishFilter, make_env
from repro.tcp import SUNOS_413, TCPProtocol, XKERNEL, tcp_stubs
from repro.tcp.ip import IPProtocol
from repro.xkernel.stack import NodeAnchor, ProtocolStack


def build_world():
    """Two machines: a 'vendor' host and the instrumented x-kernel host."""
    env = make_env(seed=7)
    vendor_node = env.network.add_node("vendor", 1)
    xkernel_node = env.network.add_node("xkernel", 2)
    stubs = tcp_stubs()

    # the vendor machine runs a plain stack: TCP / IP / device
    vendor_tcp = TCPProtocol(env.scheduler, SUNOS_413, local_address=1,
                             trace=env.trace, host="vendor")
    ProtocolStack("vendor").build(
        vendor_tcp, IPProtocol(1), NodeAnchor(vendor_node))

    # the instrumented machine carries the PFI layer between TCP and IP
    xkernel_tcp = TCPProtocol(env.scheduler, XKERNEL, local_address=2,
                              trace=env.trace, host="xkernel")
    pfi = PFILayer("pfi", env.scheduler, stubs, trace=env.trace,
                   sync=env.sync, node="xkernel")
    ProtocolStack("xkernel").build(
        xkernel_tcp, pfi, IPProtocol(2), NodeAnchor(xkernel_node))

    return env, vendor_tcp, xkernel_tcp, pfi


def main():
    env, vendor_tcp, xkernel_tcp, pfi = build_world()

    # open a connection from the vendor machine to the x-kernel machine
    server = xkernel_tcp.listen(80)
    client = vendor_tcp.open_connection(local_port=5000, remote_address=2,
                                        remote_port=80)
    client.connect()
    env.run_until(1.0)
    print(f"connection established: client={client.state} "
          f"server={server.state}")

    # --- a Python filter script: drop every third data segment ----------
    def drop_every_third(ctx):
        if ctx.msg_type() != "DATA":
            return
        n = ctx.state.get("n", 0) + 1
        ctx.state["n"] = n
        if n % 3 == 0:
            ctx.log("dropped by quickstart filter")
            ctx.drop()

    pfi.set_receive_filter(drop_every_third)
    client.send(b"reliable delivery despite loss " * 64)
    env.run_until(120.0)
    print(f"delivered {len(server.delivered)} bytes through a filter that "
          f"dropped every 3rd data segment")
    print(f"vendor TCP retransmitted "
          f"{env.trace.count('tcp.retransmit', conn='vendor:5000')} times")

    # --- the same experiment, script-driven in tclish -------------------
    pfi.set_receive_filter(TclishFilter("""
        # drop every third DATA segment, log what we drop
        if {[msg_type cur_msg] eq "DATA"} {
            incr n
            if {$n % 3 == 0} {
                msg_log cur_msg
                xDrop cur_msg
            }
        }
    """, init_script="set n 0"))
    before = len(server.delivered)
    client.send(b"and the same thing, script-driven " * 32)
    env.run_until(240.0)
    print(f"tclish filter: delivered {len(server.delivered) - before} "
          f"more bytes")

    # --- inject a spontaneous probe message ------------------------------
    probe = pfi.stubs.generate("ACK", src_port=80, dst_port=5000,
                               seq=0, ack=0, dst=1)
    pfi.inject(probe, "send")
    env.run_until(241.0)
    print("injected a spurious ACK probe toward the vendor machine "
          "(stateless generation, exactly as the paper describes)")

    # --- the trace is the experiment's record ---------------------------
    print("\nlast five PFI log lines:")
    for line in pfi.msglog.lines[-5:]:
        print(" ", line)


if __name__ == "__main__":
    main()
