"""A from-scratch TCP implementation with vendor behaviour profiles.

This is the substrate for the paper's §4.1 experiments.  The machinery
(handshake, retransmission, RTT estimation, keep-alive, zero-window
probing, reassembly) is shared; everything the paper observed to differ
between SunOS 4.1.3, AIX 3.2.3, NeXT Mach, and Solaris 2.3 is a
:class:`~repro.tcp.vendors.VendorProfile` parameter.

Public surface::

    from repro.tcp import (
        TCPConnection, TCPProtocol, Segment, VendorProfile,
        VENDORS, SUNOS_413, AIX_323, NEXT_MACH, SOLARIS_23, XKERNEL,
        tcp_stubs,
    )
"""

from repro.tcp.congestion import TahoeController
from repro.tcp.connection import (CLOSED, ESTABLISHED, LISTEN, SYN_RCVD,
                                  SYN_SENT, TCPConnection)
from repro.tcp.ip import IPHeader, IPProtocol
from repro.tcp.protocol import TCPProtocol, tcp_stubs
from repro.tcp.reassembly import ReassemblyQueue
from repro.tcp.retransmit import RetransmissionManager
from repro.tcp.rtt import (JacobsonKarnEstimator, NaiveEstimator,
                           make_estimator)
from repro.tcp.segment import (ACK, FIN, PSH, RST, SYN, URG, Segment,
                               classify, seq_add, seq_leq, seq_lt, seq_sub)
from repro.tcp.vendors import (AIX_323, BSD_DERIVED, NEXT_MACH, SOLARIS_23,
                               SUNOS_413, VENDORS, XKERNEL, VendorProfile)

__all__ = [
    "ACK", "AIX_323", "BSD_DERIVED", "CLOSED", "ESTABLISHED", "FIN",
    "IPHeader", "IPProtocol", "JacobsonKarnEstimator", "LISTEN",
    "NEXT_MACH", "NaiveEstimator", "PSH", "RST", "ReassemblyQueue",
    "RetransmissionManager", "SOLARIS_23", "SUNOS_413", "SYN", "SYN_RCVD",
    "SYN_SENT", "Segment", "TCPConnection", "TCPProtocol", "TahoeController", "URG",
    "VENDORS", "VendorProfile", "XKERNEL", "classify", "make_estimator",
    "seq_add", "seq_leq", "seq_lt", "seq_sub", "tcp_stubs",
]
