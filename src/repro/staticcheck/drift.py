"""Pass 3: trace-schema drift between emitters, consumers and registry.

With :mod:`repro.staticcheck.harvest` providing both sides of the trace
schema, drift is set arithmetic:

========  ==========================================================
SC201     a subscription names a kind (or prefix) nothing emits --
          the invariant/query silently checks nothing (error)
SC202     an emitted kind has no oracle coverage at all -- purely
          informational; plenty of infrastructure kinds (``net.*``,
          ``driver.*``) are legitimately oracle-free
SC203     a :mod:`repro.netsim.kinds` registry constant no emit site
          produces -- dead schema (error)
SC204     an emitted kind is missing from the registry -- schema
          drift (error)
========  ==========================================================

SC202 being *info* is a deliberate severity choice: it keeps ``repro
check`` clean (findings are warning-and-above) while still printing the
coverage gap in verbose output, so adding an oracle for an uncovered
kind is discoverable work rather than a suppressed warning.
"""

from __future__ import annotations

import ast
import inspect
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set

from repro.core.tclish.lint.diagnostics import LintReport, make
from repro.netsim import kinds as kinds_registry

from repro.staticcheck.harvest import Harvest, Subscription, harvest_paths


def _registry_lines() -> Dict[str, int]:
    """Map each registered kind to its assignment line in kinds.py."""
    lines: Dict[str, int] = {}
    try:
        source = inspect.getsource(kinds_registry)
    except (OSError, TypeError):
        return lines
    tree = ast.parse(source)
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            lines[node.value.value] = node.lineno
    return lines


def check_drift(paths: Sequence[str], *,
                harvest: Optional[Harvest] = None,
                registry: Optional[Set[str]] = None
                ) -> List[LintReport]:
    """Diff emit sites, subscriptions and the registry; one report per file.

    ``harvest``/``registry`` exist for tests that want to inject a
    synthetic schema; production callers pass only ``paths``.
    """
    if harvest is None:
        harvest = harvest_paths(paths)
    if registry is None:
        registry = set(kinds_registry.all_kinds())
    emitted = harvest.emitted_kinds()
    reports: Dict[str, LintReport] = {}

    def report_for(path: str) -> LintReport:
        if path not in reports:
            reports[path] = LintReport(source_name=path)
        return reports[path]

    # SC201: subscriptions to kinds nothing emits
    for sub in harvest.subscriptions:
        if any(sub.matches(kind) for kind in emitted):
            continue
        what = "prefix" if sub.prefix else "kind"
        report_for(sub.path).add(make(
            "SC201", sub.line, 1,
            f"subscription ({sub.role}) to trace {what} {sub.kind!r}, "
            f"which no call site emits",
            hint="fix the kind name, or remove the dead subscription"))

    # SC202 (info): emitted kinds with zero oracle coverage
    oracle_subs = [s for s in harvest.subscriptions
                   if s.role.startswith("oracle-")]
    covered = {kind for kind in emitted
               if any(s.matches(kind) for s in oracle_subs)}
    first_sites = {}
    for site in harvest.emits:
        first_sites.setdefault(site.kind, site)
    for kind in sorted(emitted - covered):
        site = first_sites[kind]
        report_for(site.path).add(make(
            "SC202", site.line, 1,
            f"emitted kind {kind!r} is checked by no oracle invariant",
            hint="consider an invariant pack subscription"))

    # SC203: registry constants nothing emits
    registry_lines = _registry_lines()
    kinds_path = getattr(kinds_registry, "__file__", "repro/netsim/kinds.py")
    for kind in sorted(registry - emitted):
        report_for(kinds_path).add(make(
            "SC203", registry_lines.get(kind, 1), 1,
            f"registry kind {kind!r} "
            f"({kinds_registry.constant_name(kind)}) has no emit site",
            hint="delete the constant or restore the emitter"))

    # SC204: emitted kinds the registry does not know
    for kind in sorted(emitted - registry):
        site = first_sites[kind]
        report_for(site.path).add(make(
            "SC204", site.line, 1,
            f"emitted kind {kind!r} is missing from "
            f"repro.netsim.kinds",
            hint=f"add {kinds_registry.constant_name(kind)} = "
                 f"{kind!r} to the registry"))

    return [reports[path] for path in sorted(reports)]


def coverage_summary(harvest: Harvest) -> Dict[str, List[str]]:
    """Emitted kinds grouped by the oracle subscriptions covering them.

    Diagnostic helper for ``repro check -v`` and the test that proves
    every oracle-subscribed kind is actually emitted.
    """
    oracle_subs = [s for s in harvest.subscriptions
                   if s.role.startswith("oracle-")]
    grouped: Dict[str, List[str]] = defaultdict(list)
    for kind in sorted(harvest.emitted_kinds()):
        for sub in oracle_subs:
            if sub.matches(kind):
                grouped[kind].append(
                    f"{sub.path}:{sub.line} ({sub.role})")
    return dict(grouped)
