"""Tests for the alternating-bit protocol under PFI fault injection."""

import pytest

from repro.abp import AbpFrame, AbpReceiver, AbpSender, abp_stubs
from repro.core import PFILayer, make_env
from repro.core.faults import drop_by_type, receive_omission
from repro.xkernel.stack import NodeAnchor, ProtocolStack


def build_abp(*, check_bit=True, seed=0, with_pfi_on="receiver"):
    """Sender on node 1, receiver on node 2, PFI under one of them."""
    env = make_env(seed=seed)
    n1 = env.network.add_node("sender", 1)
    n2 = env.network.add_node("receiver", 2)
    stubs = abp_stubs()

    sender = AbpSender(env.scheduler, peer_address=2, trace=env.trace)
    sender_pfi = PFILayer("pfi_s", env.scheduler, stubs, trace=env.trace,
                          sync=env.sync, node="sender")
    ProtocolStack("s").build(sender, sender_pfi, NodeAnchor(n1, "anchor_s"))

    receiver = AbpReceiver(env.scheduler, peer_address=1,
                           check_bit=check_bit, trace=env.trace)
    receiver_pfi = PFILayer("pfi_r", env.scheduler, stubs, trace=env.trace,
                            sync=env.sync, node="receiver")
    ProtocolStack("r").build(receiver, receiver_pfi,
                             NodeAnchor(n2, "anchor_r"))
    return env, sender, receiver, sender_pfi, receiver_pfi


class TestCleanChannel:
    def test_in_order_delivery(self):
        env, sender, receiver, _, _ = build_abp()
        for i in range(5):
            sender.send(f"frame-{i}".encode())
        env.run_until(30.0)
        assert receiver.delivered == [f"frame-{i}".encode()
                                      for i in range(5)]
        assert sender.idle

    def test_bit_alternates(self):
        env, sender, receiver, _, _ = build_abp()
        sender.send(b"a")
        sender.send(b"b")
        env.run_until(10.0)
        bits = [e.get("bit") for e in env.trace.entries("abp.delivered")]
        assert bits == [0, 1]

    def test_no_retransmissions_without_faults(self):
        env, sender, receiver, _, _ = build_abp()
        sender.send(b"clean")
        env.run_until(10.0)
        assert sender.retransmissions == 0


class TestUnderFaults:
    def test_data_loss_recovered_by_retransmission(self):
        env, sender, receiver, _, receiver_pfi = build_abp()

        def drop_first_data(ctx):
            if ctx.msg_type() == "ABP_DATA" and not ctx.state.get("done"):
                ctx.state["done"] = True
                ctx.drop()

        receiver_pfi.set_receive_filter(drop_first_data)
        sender.send(b"survives loss")
        env.run_until(30.0)
        assert receiver.delivered == [b"survives loss"]
        assert sender.retransmissions >= 1

    def test_ack_loss_correct_receiver_suppresses_duplicate(self):
        env, sender, receiver, _, receiver_pfi = build_abp(check_bit=True)
        receiver_pfi.set_send_filter(_drop_first_ack())
        sender.send(b"exactly once")
        env.run_until(30.0)
        assert receiver.delivered == [b"exactly once"]
        assert receiver.duplicates_delivered == 0
        assert env.trace.count("abp.duplicate_suppressed") >= 1

    def test_ack_loss_buggy_receiver_delivers_twice(self):
        """The findable bug: one dropped ACK = one duplicate delivery."""
        env, sender, receiver, _, receiver_pfi = build_abp(check_bit=False)
        receiver_pfi.set_send_filter(_drop_first_ack())
        sender.send(b"twice!")
        env.run_until(30.0)
        assert receiver.delivered == [b"twice!", b"twice!"]
        assert receiver.duplicates_delivered == 1

    def test_heavy_omission_eventual_delivery(self):
        env, sender, receiver, _, receiver_pfi = build_abp(seed=3)
        receiver_pfi.set_receive_filter(receive_omission(0.5))
        payloads = [f"p{i}".encode() for i in range(10)]
        for payload in payloads:
            sender.send(payload)
        env.run_until(600.0)
        assert receiver.delivered == payloads

    def test_total_loss_bounded_sender_gives_up(self):
        env = make_env()
        n1 = env.network.add_node("s", 1)
        env.network.add_node("r", 2)
        sender = AbpSender(env.scheduler, peer_address=2,
                           max_retransmits=5, trace=env.trace)
        pfi = PFILayer("pfi", env.scheduler, abp_stubs(), trace=env.trace)
        ProtocolStack().build(sender, pfi, NodeAnchor(n1))
        pfi.set_send_filter(drop_by_type("ABP_DATA"))
        sender.send(b"void")
        env.run_until(60.0)
        assert sender.gave_up
        assert sender.retransmissions == 5

    def test_duplicate_injection_handled_by_correct_receiver(self):
        env, sender, receiver, _, receiver_pfi = build_abp()

        def duplicate_data(ctx):
            if ctx.msg_type() == "ABP_DATA":
                ctx.duplicate()

        receiver_pfi.set_receive_filter(duplicate_data)
        sender.send(b"dup me")
        env.run_until(30.0)
        assert receiver.delivered == [b"dup me"]

    def test_injected_forged_ack_desyncs_nothing_fatal(self):
        """A spurious ACK for the wrong bit must be ignored as stale."""
        env, sender, receiver, sender_pfi, _ = build_abp()
        sender.send(b"real")
        forged = sender_pfi.stubs.generate("ABP_ACK", bit=1, dst=1)
        sender_pfi.inject(forged, "receive")
        env.run_until(30.0)
        assert receiver.delivered == [b"real"]
        assert env.trace.count("abp.stale_ack") >= 1


def _drop_first_ack():
    def fn(ctx):
        if ctx.msg_type() == "ABP_ACK" and not ctx.state.get("done"):
            ctx.state["done"] = True
            ctx.drop()
    return fn


class TestFrameValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            AbpFrame("NACK", 0)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            AbpFrame("DATA", 2)

    def test_stub_recognition(self):
        from repro.xkernel.message import Message
        stubs = abp_stubs()
        assert stubs.msg_type(Message(payload=AbpFrame("DATA", 0))) == \
            "ABP_DATA"
        assert stubs.msg_type(Message(payload=AbpFrame("ACK", 1))) == \
            "ABP_ACK"
