"""Regenerates paper Table 2: RTO adaptation with 3 s / 8 s ACK delays,
plus the global fault-counter probe (the 35-second delayed ACK).

Paper shapes:

- SunOS starts retransmitting at ~6.5 s, AIX at ~8 s, NeXT at ~5 s for a
  3 s delay (all above the delay: Jacobson+Karn adapted);
- Solaris starts well below the delay (it "was not nearly as adaptable to
  a sudden slow network") and times out early;
- the probe reveals Solaris's per-connection fault counter: m1 consumed
  most of the budget of 9, m2 got only the remainder.
"""

from repro.analysis.tables import render_table
from repro.experiments.tcp_delayed_ack import (run_all,
                                               run_global_counter_probe,
                                               table_rows)
from repro.tcp import BSD_DERIVED, SOLARIS_23, SUNOS_413

from conftest import emit


def run_both_delays():
    return {delay: run_all(delay) for delay in (3.0, 8.0)}


def test_table2_delayed_acks(once_benchmark):
    by_delay = once_benchmark(run_both_delays)
    for delay, results in by_delay.items():
        emit(f"Table 2: TCP Retransmission Timeouts with "
             f"{delay:.0f}-second Delayed ACKs",
             render_table("(delay 30 outgoing ACKs, then drop all incoming)",
                          ["Implementation", "Results", "Comments"],
                          table_rows(results)))
        for name in BSD_DERIVED:
            assert results[name].adapted_above_delay, \
                f"{name} should adapt above the {delay}s delay"
        assert not results["Solaris 2.3"].adapted_above_delay
    # the per-vendor spread of the BSD family (NeXT < SunOS < AIX)
    three = by_delay[3.0]
    assert (three["NeXT Mach"].first_retransmit_interval
            < three["SunOS 4.1.3"].first_retransmit_interval
            < three["AIX 3.2.3"].first_retransmit_interval)


def test_global_fault_counter_probe(once_benchmark):
    solaris = once_benchmark(run_global_counter_probe, SOLARIS_23)
    sunos = run_global_counter_probe(SUNOS_413)
    emit("Table 2 coda: the global fault counter probe (35 s delayed ACK)",
         render_table("m1 ACKed 35 s late; everything after m1 dropped",
                      ["Implementation", "m1 retransmissions",
                       "m2 retransmissions", "total before close"],
                      [["Solaris 2.3", solaris.m1_retransmissions,
                        solaris.m2_retransmissions, solaris.total],
                       ["SunOS 4.1.3", sunos.m1_retransmissions,
                        sunos.m2_retransmissions, sunos.total]]))
    assert solaris.total == 9          # the global counter
    assert solaris.m2_retransmissions < 9
    assert sunos.m2_retransmissions == 12  # per-segment counting
