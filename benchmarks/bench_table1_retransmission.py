"""Regenerates paper Table 1: TCP retransmission timeout results.

Paper rows:

- SunOS 4.1.3 / AIX 3.2.3 / NeXT Mach: segment retransmitted 12 times
  before a TCP reset; exponential backoff; 64 s upper bound.
- Solaris 2.3: 9 retransmissions (global fault counter), abrupt close
  with no reset, no upper bound reached, ~330 ms retransmission floor.
"""

from repro.analysis.tables import render_table
from repro.experiments.tcp_retransmission import run_all, table_rows
from repro.tcp import BSD_DERIVED

from conftest import emit


def test_table1_retransmission(once_benchmark):
    results = once_benchmark(run_all)
    emit("Table 1: TCP Retransmission Timeout Results",
         render_table("(pass 30 packets, then drop all incoming)",
                      ["Implementation", "Results", "Comments"],
                      table_rows(results)))

    for name in BSD_DERIVED:
        row = results[name]
        assert row.retransmissions == 12
        assert row.reset_sent
        assert row.backoff_exponential
        assert abs(row.upper_bound - 64.0) < 3.0
    solaris = results["Solaris 2.3"]
    assert solaris.retransmissions == 9
    assert not solaris.reset_sent
    assert solaris.upper_bound is None
