"""Packet recognition/generation stubs.

The paper: "The packet recognition/generation stubs ... are invoked to
determine the message type whenever a message is intercepted by the PFI
layer.  ...  The packet stubs are written by people who know the packet
formats of the target protocol."

A :class:`PacketStubs` registry holds:

- *recognizers*: functions mapping a message to a type name (or None if the
  recognizer does not understand the message).  Recognizers run in
  registration order; the first non-None answer wins.
- *generators*: named factories producing new messages of a given type,
  used by filter scripts to inject probe messages ("when generating a
  spurious ACK message in TCP, no data structures need to be updated").
- generic *field access* over headers, so scripts can read and modify
  header fields without knowing the header class.

Stubs for the two target protocols of the paper ship with the repository:
:func:`repro.tcp.protocol.tcp_stubs` and :func:`repro.gmp.daemon.gmp_stubs`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.xkernel.message import Message

Recognizer = Callable[[Message], Optional[str]]
Generator = Callable[..., Message]

UNKNOWN_TYPE = "UNKNOWN"


class StubError(Exception):
    """Raised for unknown generators or inaccessible fields."""


class PacketStubs:
    """Registry of packet recognition and generation stubs."""

    def __init__(self):
        self._recognizers: List[Recognizer] = []
        self._generators: Dict[str, Generator] = {}

    # ------------------------------------------------------------------
    # recognition
    # ------------------------------------------------------------------

    def register_recognizer(self, fn: Recognizer) -> None:
        """Add a recognizer; earlier registrations take precedence."""
        self._recognizers.append(fn)

    def msg_type(self, msg: Message) -> str:
        """Classify a message; UNKNOWN if no recognizer claims it."""
        for recognizer in self._recognizers:
            name = recognizer(msg)
            if name is not None:
                return name
        return UNKNOWN_TYPE

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def register_generator(self, type_name: str, fn: Generator) -> None:
        """Register a factory for spontaneous messages of ``type_name``."""
        self._generators[type_name] = fn

    def generate(self, type_name: str, **fields: Any) -> Message:
        """Create a new message of a registered type."""
        factory = self._generators.get(type_name)
        if factory is None:
            known = sorted(self._generators)
            raise StubError(
                f"no generator for message type {type_name!r}; known: {known}")
        msg = factory(**fields)
        msg.meta["injected"] = True
        msg.meta["injected_type"] = type_name
        return msg

    def generator_names(self) -> List[str]:
        """Registered generator type names, sorted."""
        return sorted(self._generators)

    # ------------------------------------------------------------------
    # generic field access
    # ------------------------------------------------------------------

    @staticmethod
    def get_field(msg: Message, name: str) -> Any:
        """Read ``name`` from the outermost header that defines it.

        Headers may be objects (attribute access) or dicts (key access);
        the payload is checked last when it is a dict.
        """
        for header in reversed(msg.headers):
            if isinstance(header, dict):
                if name in header:
                    return header[name]
            elif hasattr(header, name):
                return getattr(header, name)
        if isinstance(msg.payload, dict) and name in msg.payload:
            return msg.payload[name]
        if not isinstance(msg.payload, (dict, bytes, str, type(None))) \
                and hasattr(msg.payload, name):
            return getattr(msg.payload, name)
        raise StubError(f"message has no header field {name!r}")

    @staticmethod
    def set_field(msg: Message, name: str, value: Any) -> None:
        """Modify ``name`` on the outermost header that defines it."""
        for header in reversed(msg.headers):
            if isinstance(header, dict):
                if name in header:
                    header[name] = value
                    return
            elif hasattr(header, name):
                setattr(header, name, value)
                return
        if isinstance(msg.payload, dict) and name in msg.payload:
            msg.payload[name] = value
            return
        if not isinstance(msg.payload, (dict, bytes, str, type(None))) \
                and hasattr(msg.payload, name):
            setattr(msg.payload, name, value)
            return
        raise StubError(f"message has no header field {name!r}")
