"""Agreement and protocol-discipline invariants for the GMP traces.

These encode the membership guarantees the paper's experiments probed:
"membership changes are seen in the same order by all members" and the
timer/proclaim disciplines whose violations were the four historical
bugs (:mod:`repro.gmp.bugs`).  The checks are behavioural where the
trace allows it -- a daemon reporting *itself* dead, a proclaim answered
to the forwarder instead of the originator, a heartbeat timer firing in
transition -- so the pack discriminates the seeded bugs without keying
on the bug flags themselves.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.gmp import messages as m
from repro.oracle.invariants import Invariant, Violation


class GmpViewAgreement(Invariant):
    """No two mutual members disagree on a committed view.

    Two adoptions of the same group id by nodes *a* and *b* conflict
    when each node appears in the other's member list but the lists
    differ: both believe they share a group yet disagree on who is in
    it.  Group ids are only compared between views that claim a common
    membership, so independent singleton incarnations that happen to
    reuse a group id (each daemon counts group ids locally) do not
    collide.
    """

    code = "GMP-AGREE"
    description = ("mutual members of one committed group id agree on "
                   "the member list")
    kinds = ("gmp.view_adopted",)

    def __init__(self) -> None:
        self._adoptions: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}

    def on_entry(self, entry):
        node = entry["node"]
        members = tuple(entry["members"])
        gid = entry["group_id"]
        out: List[Violation] = []
        for other, other_members in self._adoptions.setdefault(gid, []):
            if (other_members != members and node in other_members
                    and other in members):
                out.append(self.violation(
                    entry, f"node {node} adopted view {list(members)} for "
                           f"group {gid} but node {other} holds "
                           f"{list(other_members)}",
                    subject=str(node)))
        self._adoptions[gid].append((node, members))
        return out


class GmpViewOrder(Invariant):
    """Each daemon adopts views in strictly increasing group-id order.

    "Membership changes are seen in the same order by all members":
    locally that means group ids never repeat or regress -- a daemon
    that re-adopts an old incarnation has lost the total order.
    """

    code = "GMP-VIEW-ORDER"
    description = "per-node adopted group ids strictly increase"
    kinds = ("gmp.view_adopted",)

    def __init__(self) -> None:
        self._last_gid: Dict[int, int] = {}

    def on_entry(self, entry):
        node, gid = entry["node"], entry["group_id"]
        last = self._last_gid.get(node)
        self._last_gid[node] = gid if last is None else max(last, gid)
        if last is not None and gid <= last:
            return [self.violation(
                entry, f"node {node} adopted group id {gid} after already "
                       f"holding {last}", subject=str(node))]
        return None


class GmpTimerDiscipline(Invariant):
    """No heartbeat timer fires while a daemon is in transition.

    Entering ``IN_TRANSITION`` requires unsetting every timer except the
    membership-change timeout; a heartbeat expectation expiring there
    (recorded as ``gmp.spurious_timeout``) is the Experiment 4 signature
    of the inverted-unregister bug.
    """

    code = "GMP-TIMER"
    description = "no heartbeat timer expires while in transition"
    kinds = ("gmp.spurious_timeout",)

    def on_entry(self, entry):
        return [self.violation(
            entry, f"heartbeat timer for member {entry['member']} fired "
                   f"while node {entry['node']} was in transition",
            subject=str(entry["node"]))]


class GmpNoSelfDeathReport(Invariant):
    """A daemon never reports its own death while staying in the group.

    Missing its own heartbeats means the daemon's timers or network are
    unreliable; the conforming response is to restart as a singleton,
    not to broadcast ``DEAD_REPORT(self)`` and keep participating.  A
    graceful :meth:`~repro.gmp.daemon.Daemon.leave` legitimately
    announces its own departure, so departures are excluded.
    """

    code = "GMP-SELF-DEATH"
    description = ("no DEAD_REPORT about oneself outside a graceful "
                   "departure")
    kinds = ("gmp.send", "gmp.leave")

    def __init__(self) -> None:
        self._leaving: Set[int] = set()

    def on_entry(self, entry):
        node = entry["node"]
        if entry.kind == "gmp.leave":
            self._leaving.add(node)
            return None
        if (entry["msg_kind"] == m.DEAD_REPORT
                and entry.get("subject") == node
                and node not in self._leaving):
            return [self.violation(
                entry, f"node {node} reported itself dead to node "
                       f"{entry['dst']} without departing",
                subject=str(node))]
        return None


class GmpProclaimDiscipline(Invariant):
    """Proclaims are answered to, and forwarded as, their originator.

    The protocol threads the original proclaimer through forwarding
    hops so the leader's answer reaches the machine that asked.
    Replying to the forwarder, or re-sending a forwarded proclaim under
    the forwarder's own identity, is the Table 7 bug (both halves).
    """

    code = "GMP-PROCLAIM-REPLY"
    description = ("proclaim replies target the originator and forwards "
                   "preserve it")
    kinds = ("gmp.proclaim_reply", "gmp.proclaim_forwarded")

    def on_entry(self, entry):
        node = str(entry["node"])
        if entry.kind == "gmp.proclaim_forwarded":
            if entry["forwarded_as"] != entry["originator"]:
                return [self.violation(
                    entry, f"proclaim from node {entry['originator']} "
                           f"forwarded under identity "
                           f"{entry['forwarded_as']}", subject=node)]
            return None
        originator = entry.get("originator")
        if originator is not None and entry["to"] != originator:
            return [self.violation(
                entry, f"proclaim from node {originator} answered to "
                       f"node {entry['to']} instead", subject=node)]
        return None


class GmpNoSilentForwardDrop(Invariant):
    """Proclaim forwarding never fails silently.

    The wrong-parameter bug made the forward call of a self-down daemon
    return without sending anything, stranding joiners; the daemon
    records the swallowed forward as ``gmp.forward_param_bug``.
    """

    code = "GMP-FWD-PARAM"
    description = "no proclaim forward is silently swallowed"
    kinds = ("gmp.forward_param_bug",)

    def on_entry(self, entry):
        return [self.violation(
            entry, f"node {entry['node']} silently dropped the proclaim "
                   f"forward for originator {entry['originator']}",
            subject=str(entry["node"]))]


def gmp_pack() -> List[Invariant]:
    """Fresh instances of the full GMP conformance pack."""
    return [GmpViewAgreement(), GmpViewOrder(), GmpTimerDiscipline(),
            GmpNoSelfDeathReport(), GmpProclaimDiscipline(),
            GmpNoSilentForwardDrop()]
