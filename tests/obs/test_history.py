"""The cross-run history store: content addressing and per-sweep deltas."""

import json

from repro.obs.history import HistoryStore

from tests.obs.test_campaign_report import _write_sweep


class TestRecording:
    def test_journal_becomes_a_row(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        row = store.record_journal(_write_sweep(tmp_path / "j.jsonl"))
        assert row.engine == "fuzz"
        assert row.data["findings"] == 1
        assert row.data["coverage_total"] == 4
        assert (store.entries / f"{row.id}.json").exists()
        assert len(store.rows()) == 1

    def test_rerecording_identical_sweep_is_idempotent(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        path = _write_sweep(tmp_path / "j.jsonl")
        first = store.record_journal(path)
        second = store.record_journal(path)
        assert first.id == second.id
        assert len(store.rows()) == 1

    def test_row_id_ignores_wall_clock_fields(self, tmp_path):
        """Two replays of one deterministic sweep share a content address
        even though journal timestamps (and hence rates) differ."""
        store = HistoryStore(tmp_path / "hist")
        row = store.record_journal(_write_sweep(tmp_path / "a.jsonl"))
        entry = json.loads((store.entries / f"{row.id}.json").read_text())
        entry["duration_s"] = entry["duration_s"] + 123.0
        entry["rate_per_s"] = 0.001
        from repro.obs.history import _row_id
        assert _row_id(entry) == row.id

    def test_bench_payload_rides_along(self, tmp_path):
        bench = tmp_path / "BENCH_OBS.json"
        bench.write_text(json.dumps({"disabled_overhead_pct": 1.2}))
        store = HistoryStore(tmp_path / "hist")
        row = store.record_bench(bench)
        assert row.data["kind"] == "bench"
        assert row.data["payload"]["disabled_overhead_pct"] == 1.2
        assert "bench payload" in store.render()


class TestDeltas:
    def test_consecutive_sweeps_of_one_experiment_show_deltas(self, tmp_path):
        """The acceptance scenario: a sweep killed partway is recorded,
        then the completed rerun of the same experiment -- same
        fingerprint, different outcome -> a delta row."""
        store = HistoryStore(tmp_path / "hist")
        partial_path = _write_sweep(tmp_path / "partial.jsonl", end=False)
        partial_path.write_bytes(partial_path.read_bytes()[:-7])
        store.record_journal(partial_path)
        store.record_journal(_write_sweep(tmp_path / "full.jsonl"))
        entries = store.deltas()
        assert len(entries) == 2
        assert entries[0]["previous"] is None
        assert entries[1]["previous"] is not None
        assert entries[1]["delta"]["executed"] == 1  # 3 -> 4 runs
        assert entries[1]["delta"]["coverage_total"] == 0  # keys all early
        rendered = store.render()
        assert "INTERRUPTED" in rendered
        assert "delta vs previous" in rendered
        assert "executed +1" in rendered

    def test_different_experiments_do_not_pair(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.record_journal(_write_sweep(tmp_path / "a.jsonl", budget=6))
        store.record_journal(_write_sweep(tmp_path / "b.jsonl", budget=3))
        entries = store.deltas()
        assert all(entry["previous"] is None for entry in entries)
        assert store.render().count("first recording") == 2

    def test_json_export(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.record_journal(_write_sweep(tmp_path / "j.jsonl"))
        payload = store.to_json()
        assert len(payload["rows"]) == 1
        assert payload["rows"][0]["previous"] is None
        json.dumps(payload["rows"][0]["data"])


class TestEmptyStore:
    def test_empty_store_renders_and_lists(self, tmp_path):
        store = HistoryStore(tmp_path / "nowhere")
        assert store.rows() == []
        assert "empty" in store.render()
        assert store.to_json()["rows"] == []
