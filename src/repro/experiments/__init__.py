"""The paper's §4 experiments, one module per table/figure.

Every module exposes a ``run_*`` function returning structured result
objects, plus a ``table_rows()``-style helper the benchmarks print.  The
mapping to the paper:

===========================================  =====================
module                                        paper artifact
===========================================  =====================
:mod:`~repro.experiments.tcp_retransmission`  Table 1
:mod:`~repro.experiments.tcp_delayed_ack`     Table 2 (+ the global
                                              fault-counter probe)
:mod:`~repro.experiments.tcp_keepalive`       Table 3
:mod:`~repro.experiments.tcp_zero_window`     Table 4
:mod:`~repro.experiments.tcp_reordering`      §4.1 Experiment 5
:mod:`~repro.experiments.gmp_packet_interruption`  Table 5
:mod:`~repro.experiments.gmp_partition`       Table 6
:mod:`~repro.experiments.gmp_proclaim`        Table 7
:mod:`~repro.experiments.gmp_timer`           Table 8
===========================================  =====================

Figure 4's series come from the Table 1/2 runs via
:func:`repro.analysis.series.retransmission_series`.
"""
