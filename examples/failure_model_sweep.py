#!/usr/bin/env python3
"""Sweep the paper's failure models (§2.2) against a GMP cluster.

For each failure model -- process crash, link crash, send/receive/general
omission, timing, byzantine -- inject it into one member of a three-node
group and report whether the group recovers a consistent view.  This is
the "testing the fault-tolerance capabilities ... under various failure
models" programme, run as a campaign.

Run it::

    python examples/failure_model_sweep.py
"""

from repro.analysis.tables import render_table
from repro.core import faults
from repro.experiments.gmp_common import build_gmp_cluster

VICTIM = 3
OTHERS = (1, 2)


def inject(cluster, model):
    """Install the filter(s) for one failure model on the victim."""
    pfi = cluster.pfis[VICTIM]
    if model == "process crash":
        pfi.set_send_filter(faults.crash_after(0))
        pfi.set_receive_filter(faults.crash_after(0))
    elif model == "link crash":
        # the victim's outbound link dies; inbound still works
        pfi.set_send_filter(faults.crash_after(0))
    elif model == "send omission":
        pfi.set_send_filter(faults.send_omission(0.6))
    elif model == "receive omission":
        pfi.set_receive_filter(faults.receive_omission(0.6))
    elif model == "general omission":
        send_f, recv_f = faults.general_omission(0.5, 0.5)
        pfi.set_send_filter(send_f)
        pfi.set_receive_filter(recv_f)
    elif model == "timing":
        pfi.set_send_filter(faults.timing_failure(2.0, jitter_var=0.5))
    elif model == "byzantine":
        pfi.set_send_filter(faults.byzantine_spurious(
            "DEAD_REPORT", every_n=3, sender=VICTIM, subject=1, dst=2))
    else:
        raise ValueError(model)


def run_model(model, seed=0):
    cluster = build_gmp_cluster([1, 2, 3], seed=seed)
    cluster.start()
    cluster.run_until(10.0)
    assert cluster.all_in_one_group()

    inject(cluster, model)
    cluster.run_until(60.0)
    survivors_view = cluster.daemons[1].view.members
    victim_excluded = VICTIM not in survivors_view
    survivors_agree = (cluster.daemons[1].view.members
                       == cluster.daemons[2].view.members)

    # heal and check recovery
    cluster.pfis[VICTIM].clear_filters()
    cluster.run_until(140.0)
    recovered = cluster.all_in_one_group()
    return {
        "model": model,
        "victim_excluded_under_fault": victim_excluded,
        "survivors_agree": survivors_agree,
        "recovered_after_heal": recovered,
    }


def main():
    models = ["process crash", "link crash", "send omission",
              "receive omission", "general omission", "timing",
              "byzantine"]
    print("sweeping the paper's failure models against a 3-node GMP group")
    rows = []
    for model in models:
        result = run_model(model)
        rows.append([
            result["model"],
            "excluded" if result["victim_excluded_under_fault"]
            else "tolerated in-group",
            "consistent" if result["survivors_agree"] else "DIVERGED",
            "rejoined" if result["recovered_after_heal"]
            else "did not recover",
        ])
        print(f"  {model}: done")
    print()
    print(render_table(
        "GMP under the failure-model lattice (victim = highest address)",
        ["Failure model", "Victim", "Survivor views", "After heal"], rows))

    print("\nseverity ordering (paper section 2.2):")
    for model in faults.SEVERITY_ORDER:
        covered = faults.COVERS[model]
        names = ", ".join(m.value for m in covered) if covered else "-"
        print(f"  {model.value:<18} covers: {names}")


if __name__ == "__main__":
    main()
