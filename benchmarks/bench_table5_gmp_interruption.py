"""Regenerates paper Table 5: GMP packet interruption.

Four sub-experiments: drop all heartbeats / suspend (finds the self-death
and parameter-passing bugs), drop heartbeats to others (kick/rejoin cycle,
"behaved as specified"), drop ACKs of MEMBERSHIP_CHANGE (never admitted),
and drop COMMITs (stuck IN_TRANSITION, then kicked).
"""

from repro.analysis.tables import render_table
from repro.experiments.gmp_packet_interruption import run_all

from conftest import emit


def test_table5_gmp_packet_interruption(once_benchmark):
    results = once_benchmark(run_all)
    rows = []

    buggy = results["self_death_buggy"]
    rows.append([
        "Drop all heartbeats (buggy gmd)",
        "gmd believes it has died: reports its own death, marks itself "
        "down, stays in the old group; forwarded PROCLAIMs lost to the "
        "parameter-passing bug",
        "implementors should have coded for the local machine 'dying'",
    ])
    fixed = results["self_death_fixed"]
    rows.append([
        "Drop all heartbeats (fixed gmd)",
        "gmd falls back to a singleton group and rejoins when heartbeats "
        "resume",
        "behaves as specified after the fix",
    ])
    suspend = results["suspend_buggy"]
    rows.append([
        "Suspend gmd 30 s (buggy gmd)",
        "identical to dropping heartbeats: timers expired during the "
        "suspension and the same bugs fired on resume",
        "matches the paper's SIGTSTP observation",
    ])
    kick = results["kick_rejoin"]
    rows.append([
        "Drop most heartbeats",
        f"kicked out {kick.times_kicked_out} times, re-admitted "
        f"{kick.times_rejoined} times over the observation window",
        "behaved as specified",
    ])
    ack = results["ack_drop"]
    rows.append([
        "Drop ACKs of MEMBERSHIP_CHANGE",
        f"the machine dropping ACKs was never admitted to a group "
        f"({ack.joiner_mc_timeouts} membership-change timeouts)",
        "behaved as specified",
    ])
    commit = results["commit_drop"]
    rows.append([
        "Drop COMMITs",
        "stayed IN_TRANSITION; everyone else committed it into their "
        "view, but without its heartbeats it was kicked out",
        "behaved as specified",
    ])
    emit("Table 5: GMP Packet Interruption",
         render_table("(three machines; PFI under the gmd's UDP interface)",
                      ["Experiment", "Results", "Comments"], rows))

    assert buggy.self_death_bug_fired and buggy.stayed_in_old_group
    assert buggy.forward_param_bug_fired
    assert fixed.formed_singleton and fixed.rejoined
    assert suspend.self_death_bug_fired and suspend.stayed_in_old_group
    assert kick.cycled
    assert not ack.joiner_ever_committed
    assert ack.others_formed_group_without_joiner
    assert commit.joiner_entered_transition
    assert commit.joiner_kicked_after_commit
