"""Unit tests for vendor profiles, the TCP protocol layer, and IP."""

import pytest

from repro.core import make_env
from repro.tcp import (AIX_323, BSD_DERIVED, NEXT_MACH, SOLARIS_23,
                       SUNOS_413, TCPProtocol, VENDORS, XKERNEL, tcp_stubs)
from repro.tcp.ip import IPHeader, IPProtocol
from repro.tcp.segment import ACK, SYN, Segment
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.xkernel.stack import NodeAnchor, ProtocolStack


class TestVendorProfiles:
    def test_paper_constants_bsd(self):
        for name in BSD_DERIVED:
            profile = VENDORS[name]
            assert profile.max_retransmits == 12
            assert profile.max_rto == 64.0
            assert profile.reset_on_timeout
            assert profile.uses_jacobson
            assert profile.ka_idle == 7200.0
            assert profile.ka_probe_interval == 75.0
            assert profile.ka_probe_retransmits == 8
            assert profile.persist_max == 60.0
            assert profile.global_fault_threshold is None

    def test_paper_constants_solaris(self):
        assert SOLARIS_23.global_fault_threshold == 9
        assert not SOLARIS_23.reset_on_timeout
        assert not SOLARIS_23.uses_jacobson
        assert SOLARIS_23.min_rto == pytest.approx(0.330)
        assert SOLARIS_23.ka_idle == 6752.0
        assert SOLARIS_23.ka_backoff
        assert SOLARIS_23.persist_max == 56.0

    def test_keepalive_garbage_byte_only_sunos(self):
        assert SUNOS_413.ka_garbage_byte
        assert not AIX_323.ka_garbage_byte
        assert not NEXT_MACH.ka_garbage_byte

    def test_solaris_skew_ratio(self):
        """The acknowledged curiosity: 6752/7200 ~= 56/60."""
        assert SOLARIS_23.ka_idle / 7200.0 == pytest.approx(
            SOLARIS_23.persist_max / 60.0, rel=0.01)

    def test_profiles_frozen(self):
        with pytest.raises(Exception):
            SUNOS_413.min_rto = 5.0

    def test_all_vendors_queue_out_of_order(self):
        assert all(p.queue_out_of_order for p in VENDORS.values())


class TestIPLayer:
    def test_push_wraps_pop_unwraps(self):
        captured = []

        class Bottom(Protocol):
            def __init__(self):
                super().__init__("bottom")

            def push(self, msg):
                captured.append(msg)

        class Top(Protocol):
            def __init__(self):
                super().__init__("top")
                self.got = []

            def pop(self, msg):
                self.got.append(msg)

        top, bottom = Top(), Bottom()
        ip = IPProtocol(local_address=1)
        ProtocolStack().build(top, ip, bottom)
        msg = Message(b"data", meta={"dst": 2})
        ip.push(msg)
        assert isinstance(captured[0].top_header, IPHeader)
        assert captured[0].top_header.src == 1

        ip.pop(captured[0])
        assert top.got == []  # dst=2, not for us

        reply = Message(b"back")
        reply.push_header(IPHeader(src=2, dst=1))
        ip.pop(reply)
        assert top.got[0].meta["src"] == 2

    def test_push_without_dst_raises(self):
        ip = IPProtocol(local_address=1)
        with pytest.raises(ValueError):
            ip.push(Message(b"lost"))


def build_two_hosts(profile_a=SUNOS_413, profile_b=XKERNEL):
    env = make_env(seed=0)
    n1 = env.network.add_node("h1", 1)
    n2 = env.network.add_node("h2", 2)
    t1 = TCPProtocol(env.scheduler, profile_a, local_address=1,
                     trace=env.trace, host="h1")
    ProtocolStack("s1").build(t1, IPProtocol(1), NodeAnchor(n1))
    t2 = TCPProtocol(env.scheduler, profile_b, local_address=2,
                     trace=env.trace, host="h2")
    ProtocolStack("s2").build(t2, IPProtocol(2), NodeAnchor(n2))
    return env, t1, t2


class TestTCPProtocolLayer:
    def test_listener_binds_on_syn(self):
        env, t1, t2 = build_two_hosts()
        server = t2.listen(80)
        client = t1.open_connection(local_port=5000, remote_address=2,
                                    remote_port=80)
        client.connect()
        env.run_until(1.0)
        assert server.established
        assert server.remote_address == 1
        assert server.remote_port == 5000
        assert t2.connection(80, 1, 5000) is server

    def test_multiple_connections_demuxed(self):
        env, t1, t2 = build_two_hosts()
        s1 = t2.listen(80)
        c1 = t1.open_connection(local_port=5000, remote_address=2,
                                remote_port=80)
        c1.connect()
        env.run_until(1.0)
        s2 = t2.listen(81)
        c2 = t1.open_connection(local_port=5001, remote_address=2,
                                remote_port=81)
        c2.connect()
        env.run_until(2.0)
        c1.send(b"to-80")
        c2.send(b"to-81")
        env.run_until(3.0)
        assert bytes(s1.delivered) == b"to-80"
        assert bytes(s2.delivered) == b"to-81"

    def test_unknown_port_refused_with_rst(self):
        env, t1, t2 = build_two_hosts()
        client = t1.open_connection(local_port=5000, remote_address=2,
                                    remote_port=4242)
        client.connect()
        env.run_until(5.0)
        assert client.state == "CLOSED"
        assert client.close_reason == "reset_received"

    def test_distinct_iss_per_connection(self):
        env, t1, _ = build_two_hosts()
        c1 = t1.open_connection(local_port=5000, remote_address=2,
                                remote_port=80)
        c2 = t1.open_connection(local_port=5001, remote_address=2,
                                remote_port=80)
        assert c1.iss != c2.iss


class TestTCPStubs:
    def test_recognizes_segment_types(self):
        stubs = tcp_stubs()
        msg = Message()
        msg.push_header(Segment(src_port=1, dst_port=2, seq=0, ack=0,
                                flags=SYN, window=0))
        assert stubs.msg_type(msg) == "SYN"

    def test_unknown_for_non_tcp(self):
        stubs = tcp_stubs()
        assert stubs.msg_type(Message(b"opaque")) == "UNKNOWN"

    def test_generates_stateless_probes(self):
        stubs = tcp_stubs()
        for type_name in ("ACK", "RST", "SYN"):
            msg = stubs.generate(type_name, src_port=9, dst_port=10,
                                 seq=1, dst=2)
            assert stubs.msg_type(msg) == type_name
            assert msg.meta["dst"] == 2
            assert msg.meta["injected"]
