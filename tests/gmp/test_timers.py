"""Unit tests for the GMP timer table, correct and buggy semantics."""

import pytest

from repro.gmp.timers import GmpTimerTable
from repro.netsim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler()


class TestCorrectSemantics:
    def test_unregister_kind_removes_all(self, sched):
        table = GmpTimerTable(sched)
        fired = []
        for key in ("a", "b", "c"):
            table.register("expect", key, 1.0, lambda k=key: fired.append(k))
        assert table.unregister("expect") == 3
        sched.run()
        assert fired == []

    def test_unregister_key_removes_one(self, sched):
        table = GmpTimerTable(sched)
        fired = []
        for key in ("a", "b"):
            table.register("expect", key, 1.0, lambda k=key: fired.append(k))
        assert table.unregister("expect", "a") == 1
        sched.run()
        assert fired == ["b"]


class TestBuggySemantics:
    """The inverted logic of paper Experiment 4."""

    def test_null_arg_removes_only_first_registered(self, sched):
        table = GmpTimerTable(sched, inverted_unregister=True)
        fired = []
        for key in ("self", "leader", "other"):
            table.register("expect", key, 1.0, lambda k=key: fired.append(k))
        assert table.unregister("expect") == 1
        sched.run()
        # first-registered ("self") was removed; the rest survive and fire
        assert fired == ["leader", "other"]

    def test_keyed_arg_removes_all_of_kind(self, sched):
        table = GmpTimerTable(sched, inverted_unregister=True)
        fired = []
        for key in ("a", "b"):
            table.register("expect", key, 1.0, lambda k=key: fired.append(k))
        assert table.unregister("expect", "a") == 2
        sched.run()
        assert fired == []

    def test_rearm_keeps_registration_order(self, sched):
        """Re-arming must not change which timer is 'first'."""
        table = GmpTimerTable(sched, inverted_unregister=True)
        fired = []
        table.register("expect", "self", 1.0, lambda: fired.append("self"))
        table.register("expect", "leader", 1.0, lambda: fired.append("leader"))
        # heartbeats re-arm both repeatedly, leader last
        table.register("expect", "self", 2.0, lambda: fired.append("self"))
        table.register("expect", "leader", 2.0, lambda: fired.append("leader"))
        table.unregister("expect")  # buggy: removes only the FIRST created
        sched.run()
        assert fired == ["leader"]


class TestQueries:
    def test_armed_keys_in_order(self, sched):
        table = GmpTimerTable(sched)
        table.register("expect", 3, 1.0, lambda: None)
        table.register("expect", 1, 1.0, lambda: None)
        assert table.armed_keys("expect") == [3, 1]

    def test_armed_kinds(self, sched):
        table = GmpTimerTable(sched)
        table.register("expect", "a", 1.0, lambda: None)
        table.register("mc", "x", 1.0, lambda: None)
        assert table.armed_kinds() == ["expect", "mc"]

    def test_stop_all(self, sched):
        table = GmpTimerTable(sched)
        fired = []
        table.register("expect", "a", 1.0, lambda: fired.append(1))
        table.stop_all()
        sched.run()
        assert fired == []
        assert len(table) == 0

    def test_register_replaces_callback(self, sched):
        table = GmpTimerTable(sched)
        fired = []
        table.register("t", "k", 1.0, lambda: fired.append("old"))
        table.register("t", "k", 1.0, lambda: fired.append("new"))
        sched.run()
        assert fired == ["new"]
