"""Tests for the randomized campaign runner, using ABP as the subject."""

import pytest

from repro.abp import AbpReceiver, AbpSender, abp_stubs
from repro.core import PFILayer, make_env
from repro.core.faults import FailureModel
from repro.core.genscripts import (MessageTypeSpec, ProtocolSpec,
                                   generate_campaign)
from repro.core.randomtest import (Scorecard, TrialOutcome, TrialRecord,
                                   run_campaign)
from repro.xkernel.stack import NodeAnchor, ProtocolStack

ABP_SPEC = ProtocolSpec(
    name="abp",
    message_types=(MessageTypeSpec("ABP_DATA"), MessageTypeSpec("ABP_ACK")))

PAYLOADS = [f"p{i}".encode() for i in range(4)]


def abp_trial_factory(*, check_bit: bool):
    """Build a trial fn checking exactly-once in-order delivery."""
    def trial(script, seed) -> TrialOutcome:
        env = make_env(seed=seed)
        n1 = env.network.add_node("s", 1)
        n2 = env.network.add_node("r", 2)
        stubs = abp_stubs()
        sender = AbpSender(env.scheduler, peer_address=2, trace=env.trace)
        spfi = PFILayer("ps", env.scheduler, stubs, trace=env.trace,
                        sync=env.sync, dist=env.dist("s"), node="s")
        ProtocolStack("s").build(sender, spfi, NodeAnchor(n1, "as"))
        receiver = AbpReceiver(env.scheduler, peer_address=1,
                               check_bit=check_bit, trace=env.trace)
        rpfi = PFILayer("pr", env.scheduler, stubs, trace=env.trace,
                        sync=env.sync, dist=env.dist("r"), node="r")
        ProtocolStack("r").build(receiver, rpfi, NodeAnchor(n2, "ar"))
        if script.direction == "send":
            rpfi.set_send_filter(script.python_filter)
        else:
            rpfi.set_receive_filter(script.python_filter)
        for payload in PAYLOADS:
            sender.send(payload)
        env.run_until(90.0)
        if receiver.delivered == PAYLOADS:
            return TrialOutcome(True)
        return TrialOutcome(False,
                            f"delivered {len(receiver.delivered)} frames")
    return trial


def abp_scripts():
    # exclude the crash scripts: a killed channel legitimately prevents
    # delivery for correct and buggy builds alike
    return [s for s in generate_campaign(ABP_SPEC, omission_rates=(0.2,))
            if s.failure_model is not FailureModel.PROCESS_CRASH
            and not s.name.startswith("drop_abp_data")
            and not s.name.startswith("drop_abp_ack")]


class TestRunner:
    def test_correct_receiver_passes_more_than_buggy(self):
        scripts = abp_scripts()
        good = run_campaign(scripts, abp_trial_factory(check_bit=True),
                            seed=1)
        bad = run_campaign(scripts, abp_trial_factory(check_bit=False),
                           seed=1)
        assert good.pass_rate() > bad.pass_rate()
        assert bad.failing_scripts()

    def test_scorecard_reproducible(self):
        scripts = abp_scripts()
        one = run_campaign(scripts, abp_trial_factory(check_bit=False),
                           seed=4)
        two = run_campaign(scripts, abp_trial_factory(check_bit=False),
                           seed=4)
        assert [r.outcome.passed for r in one.records] == \
            [r.outcome.passed for r in two.records]

    def test_sampling_limits_trials(self):
        scripts = abp_scripts()
        scorecard = run_campaign(scripts,
                                 abp_trial_factory(check_bit=True),
                                 seed=2, sample=3)
        assert scorecard.total == 3

    def test_repetitions_multiply_trials(self):
        scripts = abp_scripts()[:2]
        scorecard = run_campaign(scripts,
                                 abp_trial_factory(check_bit=True),
                                 seed=3, repetitions=3)
        assert scorecard.total == 6

    def test_trial_seeds_differ_across_repetitions(self):
        scripts = abp_scripts()[:1]
        scorecard = run_campaign(scripts,
                                 abp_trial_factory(check_bit=True),
                                 seed=3, repetitions=3)
        seeds = [r.seed for r in scorecard.records]
        assert len(set(seeds)) == 3


class TestScorecard:
    def make(self, outcomes):
        scripts = abp_scripts()
        scorecard = Scorecard()
        for script, passed in zip(scripts, outcomes):
            scorecard.add(TrialRecord(script=script, seed=0,
                                      outcome=TrialOutcome(passed)))
        return scorecard

    def test_counts(self):
        scorecard = self.make([True, False, True])
        assert scorecard.total == 3
        assert scorecard.passed == 2
        assert scorecard.pass_rate() == pytest.approx(2 / 3)

    def test_by_model_totals_match(self):
        scorecard = self.make([True] * 5 + [False] * 3)
        by_model = scorecard.by_model()
        assert sum(t for _, t in by_model.values()) == scorecard.total
        assert sum(p for p, _ in by_model.values()) == scorecard.passed

    def test_empty_pass_rate(self):
        assert Scorecard().pass_rate() == 1.0

    def test_render_contains_models_and_total(self):
        scorecard = self.make([True, False])
        text = scorecard.render("test card")
        assert "test card" in text
        assert "TOTAL" in text
