"""Dataflow scriptlint (SL011-SL013), span accuracy, and fingerprints.

The dataflow codes come from whole-script def-use chains: a filter's
interpreter state persists across invocations, so "written but never
read anywhere" is sound evidence of a dead store, and a constant-folded
``expr`` condition is sound evidence of dead clauses.
"""

from repro.core.tclish.lint import CODES, lint_source
from repro.core.tclish.lint.diagnostics import Diagnostic


def codes(report):
    return [d.code for d in report.sorted()]


def only(report, code):
    found = [d for d in report.sorted() if d.code == code]
    assert len(found) == 1, f"expected one {code}, got {codes(report)}"
    return found[0]


class TestDeadStores:
    def test_plain_dead_store(self):
        d = only(lint_source("set unused 1\nxDelay 2.0"), "SL011")
        assert (d.line, d.col) == (1, 5)
        assert "unused" in d.message
        assert d.severity == "warning"

    def test_read_anywhere_keeps_it_alive(self):
        report = lint_source("set n 1\nif {[chance 0.5]} { msg_log $n }")
        assert "SL011" not in codes(report)

    def test_init_write_read_in_body_is_alive(self):
        report = lint_source("incr seen\nmsg_log $seen",
                             init_script="set seen 0")
        assert "SL011" not in codes(report)

    def test_info_exists_counts_as_read(self):
        report = lint_source(
            "if {![info exists n]} { set n 0 }\nincr n\nmsg_log $n")
        assert "SL011" not in codes(report)

    def test_accumulators_are_lenient(self):
        # incr/append idioms double as declarations; flagging them
        # would fight the stock counter pattern
        report = lint_source("incr hits", init_script="set hits 0")
        assert "SL011" not in codes(report)

    def test_proc_body_writes_exempt(self):
        report = lint_source(
            "proc f {x} { set tmp $x\nreturn $tmp }\nmsg_log [f 1]")
        assert "SL011" not in codes(report)

    def test_dynamic_variable_names_disable_the_check(self):
        report = lint_source(
            'set prefix "count"\nset ${prefix}_a 1\nset dead 2')
        assert "SL011" not in codes(report)


class TestConstantConditions:
    def test_constant_true_if(self):
        d = only(lint_source("if {1} { xDelay 1.0 }"), "SL012")
        assert (d.line, d.col) == (1, 4)
        assert "constantly true" in d.message

    def test_constant_false_if(self):
        d = only(lint_source("if {0} { xDrop cur_msg }"), "SL012")
        assert "constantly false" in d.message

    def test_foldable_arithmetic(self):
        report = lint_source("if {2 > 1} { xDelay 1.0 }")
        assert "SL012" in codes(report)

    def test_variable_condition_is_not_constant(self):
        report = lint_source("if {$n > 1} { xDelay 1.0 }",
                             init_script="set n 0")
        assert "SL012" not in codes(report)

    def test_bracketed_condition_is_not_constant(self):
        report = lint_source("if {[chance 0.5]} { xDelay 1.0 }")
        assert "SL012" not in codes(report)

    def test_while_false_flagged(self):
        d = only(lint_source("while {0} { xDelay 1.0 }"), "SL012")
        assert (d.line, d.col) == (1, 7)

    def test_while_one_loop_idiom_allowed(self):
        report = lint_source("while {1} { xDelay 1.0 }")
        assert "SL012" not in codes(report)


class TestUnreachableClauses:
    def test_else_after_constant_true(self):
        report = lint_source(
            "if {1} { xDelay 1.0 } else { xDrop cur_msg }")
        d = only(report, "SL013")
        assert (d.line, d.col) == (1, 23)
        assert "unreachable" in d.message

    def test_elseif_chain(self):
        report = lint_source(
            "if {[chance 0.5]} { xDelay 1.0 } "
            "elseif {1} { xDrop cur_msg } else { msg_log done }")
        d = only(report, "SL013")
        assert "else" in d.message

    def test_reachable_chain_is_clean(self):
        report = lint_source(
            "if {[chance 0.3]} { xDelay 1.0 } "
            "elseif {[chance 0.5]} { xDrop cur_msg } "
            "else { msg_log ok }")
        assert "SL013" not in codes(report)


class TestSpanAccuracy:
    def test_nested_brackets_keep_inner_positions(self):
        # the $ghost read sits inside two bracket levels; the span must
        # still point at it, not at the enclosing command
        source = "set x [msg_len [field_get $ghost seq]]\nmsg_log $x"
        d = only(lint_source(source), "SL003")
        assert d.line == 1
        assert d.col == source.index("$ghost") + 1

    def test_line_continuation_spans_follow_the_value(self):
        d = only(lint_source("xDelay \\\n  -1"), "SL007")
        assert (d.line, d.col) == (2, 3)

    def test_multi_command_lines(self):
        source = "set a 1; msg_log $b"
        report = lint_source(source)
        read = only(report, "SL003")
        assert read.col == source.index("$b") + 1
        dead = only(report, "SL011")
        assert dead.col == source.index("a 1") + 1

    def test_second_line_command_column(self):
        d = only(lint_source("set x 1\n   xDropp cur_msg\nmsg_log $x"),
                 "SL001")
        assert (d.line, d.col) == (2, 4)


class TestFingerprints:
    def test_stable_across_processes(self):
        # recomputing the same finding yields the same fingerprint --
        # it is a pure hash of (source, script, code, position, message)
        a = Diagnostic("SL003", "error", 3, 7, 'read of "$x"')
        b = Diagnostic("SL003", "error", 3, 7, 'read of "$x"')
        assert a.fingerprint("f.tcl") == b.fingerprint("f.tcl")

    def test_position_and_code_change_it(self):
        base = Diagnostic("SL003", "error", 3, 7, "m")
        assert base.fingerprint() != Diagnostic(
            "SL003", "error", 3, 8, "m").fingerprint()
        assert base.fingerprint() != Diagnostic(
            "SL011", "warning", 3, 7, "m").fingerprint()

    def test_source_name_scopes_it(self):
        d = Diagnostic("SL001", "error", 1, 1, "m")
        assert d.fingerprint("a.tcl") != d.fingerprint("b.tcl")

    def test_hint_does_not_change_it(self):
        plain = Diagnostic("SL001", "error", 1, 1, "m")
        hinted = Diagnostic("SL001", "error", 1, 1, "m", hint="try x")
        assert plain.fingerprint() == hinted.fingerprint()

    def test_to_dict_carries_fingerprint(self):
        report = lint_source("chance 2.0")
        entry = report.sorted()[0].to_dict()
        assert entry["fingerprint"] == report.sorted()[0].fingerprint()


class TestDocsCoverage:
    def docs(self, name):
        import os
        here = os.path.dirname(__file__)
        path = os.path.join(here, "..", "..", "docs", name)
        with open(path, encoding="utf-8") as fp:
            return fp.read()

    def test_every_code_has_a_docs_entry(self):
        # SL0xx live in docs/scriptlint.md; the SC codes (and the
        # SL011+ dataflow rows, again) in docs/staticcheck.md
        scriptlint = self.docs("scriptlint.md")
        staticcheck = self.docs("staticcheck.md")
        for code in CODES:
            where = scriptlint if code.startswith("SL") else staticcheck
            assert code in where, f"{code} is undocumented"

    def test_staticcheck_docs_cover_dataflow_codes(self):
        staticcheck = self.docs("staticcheck.md")
        for code in ("SL011", "SL012", "SL013"):
            assert code in staticcheck
