"""The canonical registry of trace-kind strings.

Every event the simulator can record is named here, once.  Emit sites in
the TCP, GMP and PFI layers reference these constants instead of scattering
string literals; consumers (oracle invariant packs, the fuzzer's coverage
keys, lineage reconstruction, analysis queries) may keep using literals --
the trace-schema drift pass of :mod:`repro.staticcheck` maps every literal
it finds back onto this registry and fails the build when the two disagree
in either direction:

- a constant below that no emit site produces is dead schema (SC203);
- an emitted kind missing from this module is schema drift (SC204);
- an oracle subscription to a kind nothing emits is a broken invariant
  (SC201).

Names follow the dotted-kind convention mechanically: ``tcp.ooo_queued``
is :data:`TCP_OOO_QUEUED`.  :func:`all_kinds` is the machine-readable
form the drift checker and the registry drift-guard test consume.
"""

from __future__ import annotations

from typing import FrozenSet

# ---------------------------------------------------------------------
# TCP (vendor profiles and the x-kernel stack)
# ---------------------------------------------------------------------

TCP_RECEIVE = "tcp.receive"
TCP_TRANSMIT = "tcp.transmit"
TCP_STATE = "tcp.state"
TCP_RETRANSMIT = "tcp.retransmit"
TCP_RETX_GIVE_UP = "tcp.retx_give_up"
TCP_FAST_RETRANSMIT = "tcp.fast_retransmit"
TCP_CWND = "tcp.cwnd"
TCP_CWND_COLLAPSE = "tcp.cwnd_collapse"
TCP_OOO_QUEUED = "tcp.ooo_queued"
TCP_OOO_DROPPED = "tcp.ooo_dropped"
TCP_CONN_DROPPED = "tcp.conn_dropped"
TCP_PERSIST_START = "tcp.persist_start"
TCP_PERSIST_STOP = "tcp.persist_stop"
TCP_ZWP_PROBE = "tcp.zwp_probe"
TCP_KEEPALIVE_PROBE = "tcp.keepalive_probe"
TCP_KEEPALIVE_GIVE_UP = "tcp.keepalive_give_up"
TCP_LINEAGE = "tcp.lineage"

# ---------------------------------------------------------------------
# GMP (group membership daemon and its reliable transport)
# ---------------------------------------------------------------------

GMP_SEND = "gmp.send"
GMP_RECEIVE = "gmp.receive"
GMP_LEAVE = "gmp.leave"
GMP_DEFECT = "gmp.defect"
GMP_SINGLETON = "gmp.singleton"
GMP_TAKEOVER = "gmp.takeover"
GMP_SUSPENDED = "gmp.suspended"
GMP_RESUMED = "gmp.resumed"
GMP_IN_TRANSITION = "gmp.in_transition"
GMP_VIEW_ADOPTED = "gmp.view_adopted"
GMP_MC_SENT = "gmp.mc_sent"
GMP_MC_REJECTED = "gmp.mc_rejected"
GMP_MC_TIMEOUT = "gmp.mc_timeout"
GMP_COMMIT_SENT = "gmp.commit_sent"
GMP_ACK_COLLECT_TIMEOUT = "gmp.ack_collect_timeout"
GMP_NACK_SENT = "gmp.nack_sent"
GMP_HEARTBEAT_TIMEOUT = "gmp.heartbeat_timeout"
GMP_SPURIOUS_TIMEOUT = "gmp.spurious_timeout"
GMP_PROCLAIM_REPLY = "gmp.proclaim_reply"
GMP_PROCLAIM_FORWARDED = "gmp.proclaim_forwarded"
GMP_SELF_DEATH_BUG = "gmp.self_death_bug"
GMP_SELF_RESTART = "gmp.self_restart"
GMP_FORWARD_PARAM_BUG = "gmp.forward_param_bug"

REL_RETRANSMIT = "rel.retransmit"
REL_ABANDON = "rel.abandon"
REL_DUPLICATE = "rel.duplicate"

# ---------------------------------------------------------------------
# PFI (the probe/fault-injection layer and its message log)
# ---------------------------------------------------------------------

PFI_DROP = "pfi.drop"
PFI_DELAY = "pfi.delay"
PFI_DUPLICATE = "pfi.duplicate"
PFI_HOLD = "pfi.hold"
PFI_RELEASE = "pfi.release"
PFI_INJECT = "pfi.inject"
PFI_KILLED_DROP = "pfi.killed_drop"
PFI_LOG = "pfi.log"

# ---------------------------------------------------------------------
# infrastructure (ABP demo protocol, network core, drivers, schedules)
# ---------------------------------------------------------------------

ABP_DATA_SENT = "abp.data_sent"
ABP_ACK_SENT = "abp.ack_sent"
ABP_ACKED = "abp.acked"
ABP_STALE_ACK = "abp.stale_ack"
ABP_RETRANSMIT = "abp.retransmit"
ABP_GIVE_UP = "abp.give_up"
ABP_DELIVERED = "abp.delivered"
ABP_DUPLICATE_DELIVERED = "abp.duplicate_delivered"
ABP_DUPLICATE_SUPPRESSED = "abp.duplicate_suppressed"

# ---------------------------------------------------------------------
# campaign flight recorder (the JSONL run journal of repro.obs.journal;
# these kinds name journal events, recorded via Journal.record rather
# than TraceRecorder.record, but they share this registry so the
# SC201-SC204 drift pass covers both schemas)
# ---------------------------------------------------------------------

CAMPAIGN_START = "campaign.start"
CAMPAIGN_PREFLIGHT = "campaign.preflight"
CAMPAIGN_CHECKPOINT_CAPTURE = "campaign.checkpoint_capture"
CAMPAIGN_PHASE_START = "campaign.phase_start"
CAMPAIGN_PHASE_END = "campaign.phase_end"
CAMPAIGN_RUN_START = "campaign.run_start"
CAMPAIGN_RUN_END = "campaign.run_end"
CAMPAIGN_WORKER_ERROR = "campaign.worker_error"
CAMPAIGN_SHRINK_STEP = "campaign.shrink_step"
CAMPAIGN_END = "campaign.end"

NET_SEND = "net.send"
NET_LINK_DROP = "net.link_drop"
NET_UNROUTABLE = "net.unroutable"
NET_PARTITION_DROP = "net.partition_drop"

DRIVER_DELIVER = "driver.deliver"
FAULT_STEP = "fault.step"


def all_kinds() -> FrozenSet[str]:
    """Every registered trace kind, as a frozenset of strings."""
    return frozenset(
        value for name, value in globals().items()
        if name.isupper() and isinstance(value, str))


def constant_name(kind: str) -> str:
    """The registry constant naming ``kind`` (mechanical mapping)."""
    return kind.replace(".", "_").upper()
